//! The coordinator ⇄ worker wire protocol.
//!
//! Frames are length-prefixed, checksummed JSON: 8 lowercase hex
//! digits (the body byte length), a newline, then the body — 16
//! lowercase hex digits (the FNV-1a checksum of the payload), one
//! space, and the payload itself. Length prefixing — not line framing
//! — because payloads embed whole shard results whose violation
//! messages may contain anything; the checksum is what lets a reader
//! on a hostile transport *reject* a corrupted payload instead of
//! deserializing garbage. The same codec runs over both transports:
//! the coordinator writes [`CoordMsg`] frames to a worker's stdin (or
//! TCP stream); the worker writes [`WorkerMsg`] frames back (its
//! stderr passes through for human diagnostics in stdio mode).
//!
//! Read failures are structured ([`FrameError`]): the coordinator
//! must distinguish a *corrupt* peer (bad prefix, oversized length,
//! checksum mismatch — sever and consume a lease attempt) from a
//! *slow or dead* one (EOF, timeout — let the lease machinery requeue
//! on its own clock).

use crate::error::ModelError;
use crate::fingerprint::fingerprint;
use crate::json::{escape, Json};
use crate::service::merge::ShardResult;
use crate::service::unit::WorkUnit;
use std::fmt;
use std::io::{self, BufRead, Write};

/// The wire-protocol version. Bumped on any frame- or message-format
/// change; the TCP handshake fails closed on a mismatch so an old
/// worker can never misparse a new coordinator (or vice versa).
pub const PROTO_VERSION: u32 = 2;

/// Refuse frames above this size: a corrupt length prefix must not
/// make the reader try to allocate gigabytes.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Checksum hex digits + the separating space.
const CHECKSUM_OVERHEAD: usize = 17;

/// Why a frame read failed. [`FrameError::is_corrupt`] is the triage
/// the coordinator keys off: corrupt peers are severed (and their
/// lease attempt consumed), slow peers are left to lease expiry.
#[derive(Debug)]
pub enum FrameError {
    /// The length prefix was not 8 hex digits (or named a body too
    /// small to hold a checksum).
    BadPrefix(String),
    /// The length prefix exceeded [`MAX_FRAME`].
    Oversized(usize),
    /// The payload did not match its FNV-1a checksum.
    BadChecksum,
    /// The payload was not valid UTF-8.
    BadUtf8,
    /// EOF inside a frame: the peer died mid-write.
    Truncated,
    /// An underlying I/O error (closed pipe, read timeout, reset).
    Io(io::Error),
}

impl FrameError {
    /// Is this a *corrupt-peer* failure (reject and sever) as opposed
    /// to a slow/dead-peer one (requeue on lease expiry)?
    pub fn is_corrupt(&self) -> bool {
        matches!(
            self,
            FrameError::BadPrefix(_)
                | FrameError::Oversized(_)
                | FrameError::BadChecksum
                | FrameError::BadUtf8
        )
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadPrefix(prefix) => {
                write!(f, "bad frame length prefix {prefix:?}")
            }
            FrameError::Oversized(len) => write!(
                f,
                "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"
            ),
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
            FrameError::BadUtf8 => write!(f, "frame payload is not UTF-8"),
            FrameError::Truncated => write!(f, "EOF inside a frame"),
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    }
}

/// Encodes one frame: length prefix, newline, checksum, space,
/// payload.
pub fn encode_frame(payload: &str) -> String {
    format!(
        "{:08x}\n{:016x} {payload}",
        payload.len() + CHECKSUM_OVERHEAD,
        fingerprint(payload),
    )
}

/// Writes one checksummed frame and flushes.
///
/// # Errors
///
/// Propagates the underlying I/O error (a closed pipe means the peer
/// died; callers treat that as a dead worker, not a fatal fault).
pub fn write_frame(w: &mut dyn Write, payload: &str) -> io::Result<()> {
    w.write_all(encode_frame(payload).as_bytes())?;
    w.flush()
}

/// Reads one frame *body* (checksum + space + payload) without
/// verifying it. Returns `Ok(None)` on clean EOF at a frame boundary.
/// Split from [`verify_frame`] so the network-chaos layer can corrupt
/// bytes *before* verification — exactly where real wire damage lands.
///
/// # Errors
///
/// [`FrameError::BadPrefix`] / [`FrameError::Oversized`] on a
/// malformed length, [`FrameError::Truncated`] on EOF inside the
/// frame, [`FrameError::Io`] on transport errors (including read
/// timeouts).
pub fn read_frame_raw(r: &mut dyn BufRead) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = String::new();
    if r.read_line(&mut prefix).map_err(FrameError::from)? == 0 {
        return Ok(None);
    }
    let trimmed = prefix.trim_end_matches('\n');
    let len = match usize::from_str_radix(trimmed, 16) {
        Ok(len) if trimmed.len() == 8 => len,
        _ => return Err(FrameError::BadPrefix(trimmed.to_string())),
    };
    if len > MAX_FRAME {
        return Err(FrameError::Oversized(len));
    }
    if len < CHECKSUM_OVERHEAD {
        return Err(FrameError::BadPrefix(trimmed.to_string()));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(FrameError::from)?;
    Ok(Some(body))
}

/// Verifies a frame body: checksum format, payload UTF-8, and the
/// FNV-1a match. Returns the payload.
///
/// # Errors
///
/// [`FrameError::BadChecksum`] or [`FrameError::BadUtf8`] — both
/// corrupt-class failures.
pub fn verify_frame(body: &[u8]) -> Result<String, FrameError> {
    if body.len() < CHECKSUM_OVERHEAD || body[16] != b' ' {
        return Err(FrameError::BadChecksum);
    }
    let sum_hex =
        std::str::from_utf8(&body[..16]).map_err(|_| FrameError::BadChecksum)?;
    let sum = u64::from_str_radix(sum_hex, 16).map_err(|_| FrameError::BadChecksum)?;
    let payload = std::str::from_utf8(&body[CHECKSUM_OVERHEAD..])
        .map_err(|_| FrameError::BadUtf8)?;
    if fingerprint(payload) != sum {
        return Err(FrameError::BadChecksum);
    }
    Ok(payload.to_string())
}

/// Reads and verifies one frame. Returns `Ok(None)` on clean EOF at a
/// frame boundary (the peer closed the stream between frames).
///
/// # Errors
///
/// See [`read_frame_raw`] and [`verify_frame`].
pub fn read_frame(r: &mut dyn BufRead) -> Result<Option<String>, FrameError> {
    match read_frame_raw(r)? {
        None => Ok(None),
        Some(body) => verify_frame(&body).map(Some),
    }
}

/// Coordinator → worker messages.
#[derive(Clone, PartialEq, Debug)]
pub enum CoordMsg {
    /// TCP handshake accept: the session is live. `session` is the
    /// token the worker presents to resume after a reconnect;
    /// `lease_timeout_ms` tells it how long that resume window is.
    Welcome {
        /// The coordinator's protocol version.
        version: u32,
        /// The campaign identity (workers echo it on reconnect so a
        /// stale worker can never join the wrong campaign).
        spec_id: String,
        /// The session token for reconnection.
        session: u64,
        /// The lease/resume window, milliseconds.
        lease_timeout_ms: u64,
    },
    /// TCP handshake reject. `fatal` tells the worker whether retrying
    /// with a fresh hello could ever succeed (a stale session token is
    /// retryable; a version or spec mismatch is not).
    Reject {
        /// Why.
        reason: String,
        /// Give up instead of re-handshaking?
        fatal: bool,
    },
    /// Execute this unit; checkpoint under `state_dir`, publish
    /// violation bundles under `corpus_dir`, heartbeat every
    /// `heartbeat_ms`.
    Lease {
        /// The self-describing unit.
        unit: WorkUnit,
        /// Directory for the unit checkpoint.
        state_dir: String,
        /// Directory for deduplicated violation bundles.
        corpus_dir: String,
        /// Heartbeat period, milliseconds.
        heartbeat_ms: u64,
    },
    /// No more work: exit cleanly.
    Shutdown,
}

impl CoordMsg {
    /// Serialises the message as JSON.
    pub fn to_json(&self) -> String {
        match self {
            CoordMsg::Welcome { version, spec_id, session, lease_timeout_ms } => {
                format!(
                    "{{\"type\": \"welcome\", \"version\": {version}, \
                     \"spec_id\": {}, \"session\": {session}, \
                     \"lease_timeout_ms\": {lease_timeout_ms}}}",
                    escape(spec_id),
                )
            }
            CoordMsg::Reject { reason, fatal } => format!(
                "{{\"type\": \"reject\", \"reason\": {}, \"fatal\": {fatal}}}",
                escape(reason),
            ),
            CoordMsg::Lease { unit, state_dir, corpus_dir, heartbeat_ms } => {
                format!(
                    "{{\"type\": \"lease\", \"unit\": {}, \"state_dir\": {}, \
                     \"corpus_dir\": {}, \"heartbeat_ms\": {}}}",
                    unit.to_json(),
                    escape(state_dir),
                    escape(corpus_dir),
                    heartbeat_ms,
                )
            }
            CoordMsg::Shutdown => "{\"type\": \"shutdown\"}".into(),
        }
    }

    /// Parses a message from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadSpec`] on malformed JSON, an unknown
    /// type, or missing fields.
    pub fn parse(text: &str) -> Result<CoordMsg, ModelError> {
        let bad = |reason: &str| ModelError::BadSpec {
            spec: "coordinator message".into(),
            reason: reason.into(),
        };
        let doc = Json::parse(text)?;
        match doc.get("type").and_then(Json::as_str) {
            Some("welcome") => Ok(CoordMsg::Welcome {
                version: doc
                    .get("version")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("missing `version`"))?
                    as u32,
                spec_id: doc
                    .get("spec_id")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("missing `spec_id`"))?
                    .to_string(),
                session: doc
                    .get("session")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("missing `session`"))?,
                lease_timeout_ms: doc
                    .get("lease_timeout_ms")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("missing `lease_timeout_ms`"))?,
            }),
            Some("reject") => Ok(CoordMsg::Reject {
                reason: doc
                    .get("reason")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("missing `reason`"))?
                    .to_string(),
                fatal: doc
                    .get("fatal")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| bad("missing `fatal`"))?,
            }),
            Some("lease") => Ok(CoordMsg::Lease {
                unit: WorkUnit::parse(
                    doc.get("unit").ok_or_else(|| bad("missing `unit`"))?,
                )?,
                state_dir: doc
                    .get("state_dir")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("missing `state_dir`"))?
                    .to_string(),
                corpus_dir: doc
                    .get("corpus_dir")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("missing `corpus_dir`"))?
                    .to_string(),
                heartbeat_ms: doc
                    .get("heartbeat_ms")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("missing `heartbeat_ms`"))?,
            }),
            Some("shutdown") => Ok(CoordMsg::Shutdown),
            Some(other) => Err(bad(&format!("unknown message type `{other}`"))),
            None => Err(bad("missing `type`")),
        }
    }
}

/// Worker → coordinator messages.
#[derive(Clone, PartialEq, Debug)]
pub enum WorkerMsg {
    /// TCP handshake open. A fresh worker sends only its version (and
    /// its spawn `tag`, when the coordinator launched it); a
    /// reconnecting worker also presents its `session` token and
    /// echoes the campaign `spec_id` it learned from the first
    /// [`CoordMsg::Welcome`] — both are validated fail-closed.
    Hello {
        /// The worker's protocol version.
        version: u32,
        /// The session token to resume, if reconnecting.
        session: Option<u64>,
        /// The campaign identity learned at first welcome, if any.
        spec_id: Option<String>,
        /// The coordinator-assigned spawn ordinal (binds this
        /// connection to the coordinator-held child handle so chaos
        /// kills reach the right process even over TCP).
        tag: Option<u64>,
    },
    /// Liveness signal while executing a unit; sent immediately on
    /// lease receipt and then periodically.
    Heartbeat {
        /// The unit being executed.
        unit: u64,
    },
    /// The unit's completed shard result.
    Result {
        /// The completed unit.
        unit: u64,
        /// Its records and fingerprints, in global matrix coordinates.
        shard: ShardResult,
    },
}

impl WorkerMsg {
    /// Serialises the message as JSON.
    pub fn to_json(&self) -> String {
        match self {
            WorkerMsg::Hello { version, session, spec_id, tag } => {
                let mut out = format!("{{\"type\": \"hello\", \"version\": {version}");
                if let Some(session) = session {
                    out.push_str(&format!(", \"session\": {session}"));
                }
                if let Some(spec_id) = spec_id {
                    out.push_str(&format!(", \"spec_id\": {}", escape(spec_id)));
                }
                if let Some(tag) = tag {
                    out.push_str(&format!(", \"tag\": {tag}"));
                }
                out.push('}');
                out
            }
            WorkerMsg::Heartbeat { unit } => {
                format!("{{\"type\": \"heartbeat\", \"unit\": {unit}}}")
            }
            WorkerMsg::Result { unit, shard } => format!(
                "{{\"type\": \"result\", \"unit\": {unit}, \"shard\": {}}}",
                shard.to_json()
            ),
        }
    }

    /// Parses a message from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadSpec`] on malformed JSON, an unknown
    /// type, or missing fields.
    pub fn parse(text: &str) -> Result<WorkerMsg, ModelError> {
        let bad = |reason: &str| ModelError::BadSpec {
            spec: "worker message".into(),
            reason: reason.into(),
        };
        let doc = Json::parse(text)?;
        let unit = || {
            doc.get("unit")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("missing `unit`"))
        };
        match doc.get("type").and_then(Json::as_str) {
            Some("hello") => Ok(WorkerMsg::Hello {
                version: doc
                    .get("version")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("missing `version`"))? as u32,
                session: doc.get("session").and_then(Json::as_u64),
                spec_id: doc
                    .get("spec_id")
                    .and_then(Json::as_str)
                    .map(str::to_string),
                tag: doc.get("tag").and_then(Json::as_u64),
            }),
            Some("heartbeat") => Ok(WorkerMsg::Heartbeat { unit: unit()? }),
            Some("result") => Ok(WorkerMsg::Result {
                unit: unit()?,
                shard: ShardResult::parse(
                    doc.get("shard").ok_or_else(|| bad("missing `shard`"))?,
                )?,
            }),
            Some(other) => Err(bad(&format!("unknown message type `{other}`"))),
            None => Err(bad("missing `type`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_round_trip_including_newlines() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "first\npayload").unwrap();
        write_frame(&mut buf, "").unwrap();
        write_frame(&mut buf, "third").unwrap();
        let mut r = BufReader::new(buf.as_slice());
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("first\npayload"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("third"));
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn truncated_frames_and_bad_prefixes_are_structured_errors() {
        // EOF inside the payload: a dead peer, not a corrupt one.
        let mut r = BufReader::new(&b"00000020\n0123456789abcdef short"[..]);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated)));
        // Garbage prefix: corrupt.
        let mut r = BufReader::new(&b"not-hex!\npayload"[..]);
        match read_frame(&mut r) {
            Err(e @ FrameError::BadPrefix(_)) => assert!(e.is_corrupt()),
            other => panic!("expected BadPrefix, got {other:?}"),
        }
        // Oversized length must not allocate.
        let mut r = BufReader::new(&b"ffffffff\nx"[..]);
        match read_frame(&mut r) {
            Err(e @ FrameError::Oversized(_)) => assert!(e.is_corrupt()),
            other => panic!("expected Oversized, got {other:?}"),
        }
        // A length too small to hold the checksum is corrupt too.
        let mut r = BufReader::new(&b"00000004\nabcd"[..]);
        assert!(matches!(read_frame(&mut r), Err(FrameError::BadPrefix(_))));
    }

    #[test]
    fn checksum_mismatches_are_rejected_not_deserialized() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"type\": \"heartbeat\", \"unit\": 3}").unwrap();
        // Flip one payload byte; the reader must reject, not parse.
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let mut r = BufReader::new(buf.as_slice());
        match read_frame(&mut r) {
            Err(e @ FrameError::BadChecksum) => assert!(e.is_corrupt()),
            other => panic!("expected BadChecksum, got {other:?}"),
        }
    }

    /// The corruption sweep: flipping *every* byte of a framed
    /// `WorkerMsg` must fail closed — no panic, no over-read, and
    /// never a successful read of damaged bytes.
    #[test]
    fn frame_corruption_sweep_fails_closed_on_every_byte() {
        let msg = WorkerMsg::Result {
            unit: 7,
            shard: ShardResult {
                unit: 7,
                records: Vec::new(),
                fault_records: Vec::new(),
                fingerprints: vec![1, u64::MAX - 1],
                degraded_runs: 0,
                cache_truncated: false,
            },
        };
        let mut clean = Vec::new();
        write_frame(&mut clean, &msg.to_json()).unwrap();
        let mut corrupt_class = 0usize;
        for i in 0..clean.len() {
            for bit in [0x01u8, 0x80u8] {
                let mut damaged = clean.clone();
                damaged[i] ^= bit;
                let mut r = BufReader::new(damaged.as_slice());
                match read_frame(&mut r) {
                    Ok(payload) => panic!(
                        "flip of byte {i} (bit {bit:#04x}) read {payload:?} \
                         instead of failing"
                    ),
                    Err(e) => {
                        if e.is_corrupt() {
                            corrupt_class += 1;
                        }
                        // Truncated/Io also acceptable: a flipped
                        // length prefix looks like a slow peer, and
                        // lease expiry handles those.
                    }
                }
            }
        }
        assert!(
            corrupt_class > clean.len(),
            "most flips must be detected as corruption, got {corrupt_class}"
        );
    }

    #[test]
    fn coord_messages_round_trip() {
        let msgs = [
            CoordMsg::Welcome {
                version: PROTO_VERSION,
                spec_id: "proto=racing seeds=0+8".into(),
                session: 41,
                lease_timeout_ms: 30_000,
            },
            CoordMsg::Reject { reason: "version 1 != 2".into(), fatal: true },
            CoordMsg::Lease {
                unit: WorkUnit {
                    id: 3,
                    index_base: 24,
                    scheduler: "random".into(),
                    plan: String::new(),
                    seed_start: 8,
                    runs: 8,
                    budget: 500,
                    system: vec![("kind".into(), "campaign".into())],
                },
                state_dir: "/tmp/state".into(),
                corpus_dir: "/tmp/corpus".into(),
                heartbeat_ms: 200,
            },
            CoordMsg::Shutdown,
        ];
        for msg in msgs {
            assert_eq!(CoordMsg::parse(&msg.to_json()).unwrap(), msg);
        }
    }

    #[test]
    fn worker_messages_round_trip() {
        let msgs = [
            WorkerMsg::Hello {
                version: PROTO_VERSION,
                session: None,
                spec_id: None,
                tag: Some(2),
            },
            WorkerMsg::Hello {
                version: PROTO_VERSION,
                session: Some(9),
                spec_id: Some("proto=racing seeds=0+8".into()),
                tag: None,
            },
            WorkerMsg::Heartbeat { unit: 7 },
            WorkerMsg::Result {
                unit: 7,
                shard: ShardResult {
                    unit: 7,
                    records: Vec::new(),
                    fault_records: Vec::new(),
                    fingerprints: vec![1, u64::MAX - 1],
                    degraded_runs: 0,
                    cache_truncated: false,
                },
            },
        ];
        for msg in msgs {
            assert_eq!(WorkerMsg::parse(&msg.to_json()).unwrap(), msg);
        }
    }

    #[test]
    fn unknown_message_types_are_structured_errors() {
        assert!(CoordMsg::parse("{\"type\": \"pause\"}").is_err());
        assert!(WorkerMsg::parse("{\"type\": \"pause\"}").is_err());
        assert!(WorkerMsg::parse("{}").is_err());
    }
}
