//! The coordinator ⇄ worker wire protocol.
//!
//! Frames are length-prefixed JSON over stdio: 8 lowercase hex digits
//! (the payload byte length), a newline, then exactly that many
//! payload bytes. Length prefixing — not line framing — because
//! payloads embed whole shard results whose violation messages may
//! contain anything. The coordinator writes [`CoordMsg`] frames to a
//! worker's stdin; the worker writes [`WorkerMsg`] frames to stdout
//! (its stderr passes through for human diagnostics).

use crate::error::ModelError;
use crate::json::{escape, Json};
use crate::service::merge::ShardResult;
use crate::service::unit::WorkUnit;
use std::io::{self, BufRead, Write};

/// Refuse frames above this size: a corrupt length prefix must not
/// make the reader try to allocate gigabytes.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Writes one length-prefixed frame and flushes.
///
/// # Errors
///
/// Propagates the underlying I/O error (a closed pipe means the peer
/// died; callers treat that as a dead worker, not a fatal fault).
pub fn write_frame(w: &mut dyn Write, payload: &str) -> io::Result<()> {
    write!(w, "{:08x}\n{payload}", payload.len())?;
    w.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on clean EOF at
/// a frame boundary (the peer closed the stream between frames).
///
/// # Errors
///
/// Returns an I/O error on a malformed prefix, an oversized length, or
/// EOF inside a frame.
pub fn read_frame(r: &mut dyn BufRead) -> io::Result<Option<String>> {
    let mut prefix = String::new();
    if r.read_line(&mut prefix)? == 0 {
        return Ok(None);
    }
    let len = usize::from_str_radix(prefix.trim_end(), 16).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length prefix {prefix:?}"),
        )
    })?;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Coordinator → worker messages.
#[derive(Clone, PartialEq, Debug)]
pub enum CoordMsg {
    /// Execute this unit; checkpoint under `state_dir`, publish
    /// violation bundles under `corpus_dir`, heartbeat every
    /// `heartbeat_ms`.
    Lease {
        /// The self-describing unit.
        unit: WorkUnit,
        /// Directory for the unit checkpoint.
        state_dir: String,
        /// Directory for deduplicated violation bundles.
        corpus_dir: String,
        /// Heartbeat period, milliseconds.
        heartbeat_ms: u64,
    },
    /// No more work: exit cleanly.
    Shutdown,
}

impl CoordMsg {
    /// Serialises the message as JSON.
    pub fn to_json(&self) -> String {
        match self {
            CoordMsg::Lease { unit, state_dir, corpus_dir, heartbeat_ms } => {
                format!(
                    "{{\"type\": \"lease\", \"unit\": {}, \"state_dir\": {}, \
                     \"corpus_dir\": {}, \"heartbeat_ms\": {}}}",
                    unit.to_json(),
                    escape(state_dir),
                    escape(corpus_dir),
                    heartbeat_ms,
                )
            }
            CoordMsg::Shutdown => "{\"type\": \"shutdown\"}".into(),
        }
    }

    /// Parses a message from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadSpec`] on malformed JSON, an unknown
    /// type, or missing fields.
    pub fn parse(text: &str) -> Result<CoordMsg, ModelError> {
        let bad = |reason: &str| ModelError::BadSpec {
            spec: "coordinator message".into(),
            reason: reason.into(),
        };
        let doc = Json::parse(text)?;
        match doc.get("type").and_then(Json::as_str) {
            Some("lease") => Ok(CoordMsg::Lease {
                unit: WorkUnit::parse(
                    doc.get("unit").ok_or_else(|| bad("missing `unit`"))?,
                )?,
                state_dir: doc
                    .get("state_dir")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("missing `state_dir`"))?
                    .to_string(),
                corpus_dir: doc
                    .get("corpus_dir")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("missing `corpus_dir`"))?
                    .to_string(),
                heartbeat_ms: doc
                    .get("heartbeat_ms")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("missing `heartbeat_ms`"))?,
            }),
            Some("shutdown") => Ok(CoordMsg::Shutdown),
            Some(other) => Err(bad(&format!("unknown message type `{other}`"))),
            None => Err(bad("missing `type`")),
        }
    }
}

/// Worker → coordinator messages.
#[derive(Clone, PartialEq, Debug)]
pub enum WorkerMsg {
    /// Liveness signal while executing a unit; sent immediately on
    /// lease receipt and then periodically.
    Heartbeat {
        /// The unit being executed.
        unit: u64,
    },
    /// The unit's completed shard result.
    Result {
        /// The completed unit.
        unit: u64,
        /// Its records and fingerprints, in global matrix coordinates.
        shard: ShardResult,
    },
}

impl WorkerMsg {
    /// Serialises the message as JSON.
    pub fn to_json(&self) -> String {
        match self {
            WorkerMsg::Heartbeat { unit } => {
                format!("{{\"type\": \"heartbeat\", \"unit\": {unit}}}")
            }
            WorkerMsg::Result { unit, shard } => format!(
                "{{\"type\": \"result\", \"unit\": {unit}, \"shard\": {}}}",
                shard.to_json()
            ),
        }
    }

    /// Parses a message from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadSpec`] on malformed JSON, an unknown
    /// type, or missing fields.
    pub fn parse(text: &str) -> Result<WorkerMsg, ModelError> {
        let bad = |reason: &str| ModelError::BadSpec {
            spec: "worker message".into(),
            reason: reason.into(),
        };
        let doc = Json::parse(text)?;
        let unit = || {
            doc.get("unit")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("missing `unit`"))
        };
        match doc.get("type").and_then(Json::as_str) {
            Some("heartbeat") => Ok(WorkerMsg::Heartbeat { unit: unit()? }),
            Some("result") => Ok(WorkerMsg::Result {
                unit: unit()?,
                shard: ShardResult::parse(
                    doc.get("shard").ok_or_else(|| bad("missing `shard`"))?,
                )?,
            }),
            Some(other) => Err(bad(&format!("unknown message type `{other}`"))),
            None => Err(bad("missing `type`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_round_trip_including_newlines() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "first\npayload").unwrap();
        write_frame(&mut buf, "").unwrap();
        write_frame(&mut buf, "third").unwrap();
        let mut r = BufReader::new(buf.as_slice());
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("first\npayload"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("third"));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn truncated_frames_and_bad_prefixes_are_io_errors() {
        // EOF inside the payload.
        let mut r = BufReader::new(&b"00000010\nshort"[..]);
        assert!(read_frame(&mut r).is_err());
        // Garbage prefix.
        let mut r = BufReader::new(&b"not-hex!\npayload"[..]);
        assert!(read_frame(&mut r).is_err());
        // Oversized length must not allocate.
        let mut r = BufReader::new(&b"ffffffff\nx"[..]);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn coord_messages_round_trip() {
        let lease = CoordMsg::Lease {
            unit: WorkUnit {
                id: 3,
                index_base: 24,
                scheduler: "random".into(),
                seed_start: 8,
                runs: 8,
                budget: 500,
                system: vec![("kind".into(), "campaign".into())],
            },
            state_dir: "/tmp/state".into(),
            corpus_dir: "/tmp/corpus".into(),
            heartbeat_ms: 200,
        };
        assert_eq!(CoordMsg::parse(&lease.to_json()).unwrap(), lease);
        let shutdown = CoordMsg::Shutdown;
        assert_eq!(CoordMsg::parse(&shutdown.to_json()).unwrap(), shutdown);
    }

    #[test]
    fn worker_messages_round_trip() {
        let beat = WorkerMsg::Heartbeat { unit: 7 };
        assert_eq!(WorkerMsg::parse(&beat.to_json()).unwrap(), beat);
        let result = WorkerMsg::Result {
            unit: 7,
            shard: ShardResult {
                unit: 7,
                records: Vec::new(),
                fingerprints: vec![1, u64::MAX - 1],
                degraded_runs: 0,
                cache_truncated: false,
            },
        };
        assert_eq!(WorkerMsg::parse(&result.to_json()).unwrap(), result);
    }

    #[test]
    fn unknown_message_types_are_structured_errors() {
        assert!(CoordMsg::parse("{\"type\": \"pause\"}").is_err());
        assert!(WorkerMsg::parse("{\"type\": \"pause\"}").is_err());
        assert!(WorkerMsg::parse("{}").is_err());
    }
}
