//! The persistent crash-safe job queue: append-only journal plus
//! atomic snapshot compaction.
//!
//! Durable state lives in two files under the state directory:
//!
//! * `journal.log` — append-only, one record per line:
//!   `<16-hex FNV-1a of payload> <payload JSON>\n`. Appends are
//!   fsynced; a torn tail (power loss or injected chaos) corrupts at
//!   most the lines it touched, because recovery verifies every line's
//!   checksum and *skips* what fails instead of aborting. Before each
//!   append the writer repairs a missing trailing newline, so a torn
//!   line can never splice itself into the next record.
//! * `snapshot.json` — the folded state (spec, shard results, attempt
//!   counts, quarantines), written through the fsynced atomic
//!   tmp+rename path ([`crate::json::write_atomic`]). Compaction
//!   writes the snapshot first and only then truncates the journal:
//!   a crash between the two steps leaves the journal's records
//!   harmlessly duplicating the snapshot's.
//!
//! Recovery is snapshot-then-journal-replay, and every coordinator
//! start *is* a recovery — there is no separate cold-start path to
//! rot.

use crate::error::ModelError;
use crate::fingerprint::fingerprint;
use crate::json::{escape, Json};
use crate::service::merge::ShardResult;
use crate::service::unit::ServiceSpec;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// One durable event in a service run's history.
#[derive(Clone, PartialEq, Debug)]
pub enum JournalRecord {
    /// The run began with this spec (first record of a fresh journal).
    Init {
        /// The full campaign spec.
        spec: ServiceSpec,
    },
    /// A unit was leased (persists the attempt count).
    Lease {
        /// The unit.
        unit: u64,
        /// The lease's attempt number.
        attempt: usize,
    },
    /// A unit completed with this shard result.
    Result {
        /// The shard.
        shard: ShardResult,
    },
    /// A lease ended without a result; the unit went back to pending.
    Requeue {
        /// The unit.
        unit: u64,
        /// Attempts consumed so far.
        attempt: usize,
        /// Why the lease ended.
        reason: String,
    },
    /// A unit was quarantined as poison.
    Quarantine {
        /// The unit.
        unit: u64,
        /// Why.
        reason: String,
    },
}

impl JournalRecord {
    /// Serialises the record as single-line JSON.
    pub fn to_json(&self) -> String {
        match self {
            JournalRecord::Init { spec } => {
                format!("{{\"type\": \"init\", \"spec\": {}}}", spec.to_json())
            }
            JournalRecord::Lease { unit, attempt } => format!(
                "{{\"type\": \"lease\", \"unit\": {unit}, \"attempt\": {attempt}}}"
            ),
            JournalRecord::Result { shard } => {
                format!("{{\"type\": \"result\", \"shard\": {}}}", shard.to_json())
            }
            JournalRecord::Requeue { unit, attempt, reason } => format!(
                "{{\"type\": \"requeue\", \"unit\": {unit}, \
                 \"attempt\": {attempt}, \"reason\": {}}}",
                escape(reason)
            ),
            JournalRecord::Quarantine { unit, reason } => format!(
                "{{\"type\": \"quarantine\", \"unit\": {unit}, \"reason\": {}}}",
                escape(reason)
            ),
        }
    }

    /// Parses a record from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadSpec`] on malformed JSON, an unknown
    /// type, or missing fields.
    pub fn parse(text: &str) -> Result<JournalRecord, ModelError> {
        let bad = |reason: &str| ModelError::BadSpec {
            spec: "journal record".into(),
            reason: reason.into(),
        };
        let doc = Json::parse(text)?;
        let unit = || {
            doc.get("unit")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("missing `unit`"))
        };
        let attempt = || {
            doc.get("attempt")
                .and_then(Json::as_usize)
                .ok_or_else(|| bad("missing `attempt`"))
        };
        let reason = || {
            doc.get("reason")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad("missing `reason`"))
        };
        match doc.get("type").and_then(Json::as_str) {
            Some("init") => Ok(JournalRecord::Init {
                spec: ServiceSpec::parse(
                    doc.get("spec").ok_or_else(|| bad("missing `spec`"))?,
                )?,
            }),
            Some("lease") => {
                Ok(JournalRecord::Lease { unit: unit()?, attempt: attempt()? })
            }
            Some("result") => Ok(JournalRecord::Result {
                shard: ShardResult::parse(
                    doc.get("shard").ok_or_else(|| bad("missing `shard`"))?,
                )?,
            }),
            Some("requeue") => Ok(JournalRecord::Requeue {
                unit: unit()?,
                attempt: attempt()?,
                reason: reason()?,
            }),
            Some("quarantine") => {
                Ok(JournalRecord::Quarantine { unit: unit()?, reason: reason()? })
            }
            Some(other) => Err(bad(&format!("unknown record type `{other}`"))),
            None => Err(bad("missing `type`")),
        }
    }
}

/// What recovery reassembled from disk.
#[derive(Clone, Debug, Default)]
pub struct RecoveredState {
    /// The spec the state directory belongs to (`None` for a fresh
    /// directory). Callers must validate it against the requested spec
    /// before reusing anything else here.
    pub spec: Option<ServiceSpec>,
    /// Completed shards, deduplicated by unit (first record wins; by
    /// determinism any duplicates are identical).
    pub shards: Vec<ShardResult>,
    /// Consumed lease attempts per unit still outstanding.
    pub attempts: BTreeMap<u64, usize>,
    /// Quarantined units with reasons.
    pub quarantined: Vec<(u64, String)>,
    /// Journal lines dropped as torn or corrupt — surfaced so chaos
    /// tests can assert the damage was actually seen and survived.
    pub dropped_lines: usize,
}

/// The durable queue: an open journal plus compaction bookkeeping.
#[derive(Debug)]
pub struct JobQueue {
    journal_path: PathBuf,
    snapshot_path: PathBuf,
    journal: std::fs::File,
    appends_since_compact: usize,
    compact_every: usize,
}

/// Encodes one journal line: checksum, space, payload, newline.
fn journal_line(record: &JournalRecord) -> String {
    let payload = record.to_json();
    format!("{:016x} {payload}\n", fingerprint(&payload))
}

/// Decodes one journal line, verifying the checksum.
fn parse_line(line: &str) -> Option<JournalRecord> {
    let (sum, payload) = line.split_once(' ')?;
    if sum.len() != 16 || u64::from_str_radix(sum, 16).ok()? != fingerprint(payload)
    {
        return None;
    }
    JournalRecord::parse(payload).ok()
}

impl JobQueue {
    /// Opens (creating if needed) the queue in `state_dir` and recovers
    /// whatever a previous run left there. `compact_every` bounds how
    /// many appends accumulate before [`JobQueue::maybe_compact`]
    /// folds them into the snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Service`] when the state directory cannot
    /// be created or the journal cannot be opened.
    pub fn open(state_dir: &Path, compact_every: usize) -> Result<(JobQueue, RecoveredState), ModelError> {
        let service_err = |context: &str, e: &dyn std::fmt::Display| {
            ModelError::Service { context: context.into(), reason: e.to_string() }
        };
        std::fs::create_dir_all(state_dir)
            .map_err(|e| service_err("creating state directory", &e))?;
        let journal_path = state_dir.join("journal.log");
        let snapshot_path = state_dir.join("snapshot.json");
        let recovered = recover(&snapshot_path, &journal_path);
        let journal = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal_path)
            .map_err(|e| service_err("opening journal", &e))?;
        Ok((
            JobQueue {
                journal_path,
                snapshot_path,
                journal,
                appends_since_compact: 0,
                compact_every: compact_every.max(1),
            },
            recovered,
        ))
    }

    /// Repairs a journal whose last append was torn mid-line: if the
    /// file does not end in a newline, append one, so the next record
    /// starts a fresh line and the torn one fails its checksum in
    /// isolation instead of corrupting its successor.
    fn repair_trailing_newline(&mut self) -> std::io::Result<()> {
        let len = self.journal.metadata()?.len();
        if len == 0 {
            return Ok(());
        }
        let tail = std::fs::read(&self.journal_path)?;
        if tail.last() != Some(&b'\n') {
            self.journal.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Appends one record durably (fsynced).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Service`]: a journal that cannot be
    /// written is a disk-level fault the service must not paper over.
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), ModelError> {
        self.append_bytes(journal_line(record).as_bytes())
    }

    /// Chaos hook: append only the first `keep` bytes of the record's
    /// encoded line — the on-disk shape of a power loss mid-write.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Service`] if even the torn write fails.
    pub fn torn_append(&mut self, record: &JournalRecord, keep: usize) -> Result<(), ModelError> {
        let line = journal_line(record);
        let keep = keep.min(line.len().saturating_sub(1));
        self.append_bytes(&line.as_bytes()[..keep])
    }

    fn append_bytes(&mut self, bytes: &[u8]) -> Result<(), ModelError> {
        let io = |e: std::io::Error| ModelError::Service {
            context: "journal append".into(),
            reason: e.to_string(),
        };
        self.repair_trailing_newline().map_err(io)?;
        self.journal.write_all(bytes).map_err(io)?;
        self.journal.sync_data().map_err(io)?;
        self.appends_since_compact += 1;
        Ok(())
    }

    /// Folds the current state into `snapshot.json` (atomically) and
    /// truncates the journal. Crash-ordering: the snapshot lands
    /// first, so the worst a crash can do is leave journal records
    /// that duplicate snapshot contents — recovery dedups by unit.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Service`] on snapshot or truncate I/O
    /// failure.
    pub fn compact(
        &mut self,
        spec: &ServiceSpec,
        shards: &[ShardResult],
        attempts: &[(u64, usize)],
        quarantined: &[(u64, String)],
    ) -> Result<(), ModelError> {
        let io = |context: &str, e: &dyn std::fmt::Display| ModelError::Service {
            context: context.into(),
            reason: e.to_string(),
        };
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"spec\": {},\n", spec.to_json()));
        out.push_str(&format!(
            "  \"shards\": [{}],\n",
            shards.iter().map(ShardResult::to_json).collect::<Vec<_>>().join(", ")
        ));
        out.push_str(&format!(
            "  \"attempts\": [{}],\n",
            attempts
                .iter()
                .map(|(u, a)| format!("[{u}, {a}]"))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!(
            "  \"quarantined\": [{}]\n",
            quarantined
                .iter()
                .map(|(u, r)| format!("{{\"unit\": {u}, \"reason\": {}}}", escape(r)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str("}\n");
        crate::json::write_atomic(&self.snapshot_path, &out)
            .map_err(|e| io("snapshot write", &e))?;
        self.journal
            .set_len(0)
            .map_err(|e| io("journal truncate", &e))?;
        self.appends_since_compact = 0;
        Ok(())
    }

    /// [`JobQueue::compact`] once `compact_every` appends accumulated.
    ///
    /// # Errors
    ///
    /// As for [`JobQueue::compact`].
    pub fn maybe_compact(
        &mut self,
        spec: &ServiceSpec,
        shards: &[ShardResult],
        attempts: &[(u64, usize)],
        quarantined: &[(u64, String)],
    ) -> Result<(), ModelError> {
        if self.appends_since_compact >= self.compact_every {
            self.compact(spec, shards, attempts, quarantined)?;
        }
        Ok(())
    }
}

/// Reassembles state from the snapshot plus the journal. Nothing here
/// errors: a missing snapshot is a fresh run, an unreadable line is
/// counted and skipped — recovery's contract is "salvage everything
/// whose checksum proves it whole".
fn recover(snapshot_path: &Path, journal_path: &Path) -> RecoveredState {
    let mut state = RecoveredState::default();
    let mut seen_units: BTreeMap<u64, ()> = BTreeMap::new();
    if let Ok(text) = std::fs::read_to_string(snapshot_path) {
        if let Ok(doc) = Json::parse(&text) {
            state.spec =
                doc.get("spec").and_then(|s| ServiceSpec::parse(s).ok());
            for shard in doc
                .get("shards")
                .and_then(Json::as_arr)
                .into_iter()
                .flatten()
                .filter_map(|s| ShardResult::parse(s).ok())
            {
                if seen_units.insert(shard.unit, ()).is_none() {
                    state.shards.push(shard);
                }
            }
            for pair in
                doc.get("attempts").and_then(Json::as_arr).into_iter().flatten()
            {
                if let Some([u, a]) = pair.as_arr() {
                    if let (Some(u), Some(a)) = (u.as_u64(), a.as_usize()) {
                        state.attempts.insert(u, a);
                    }
                }
            }
            for q in doc
                .get("quarantined")
                .and_then(Json::as_arr)
                .into_iter()
                .flatten()
            {
                if let (Some(u), Some(r)) = (
                    q.get("unit").and_then(Json::as_u64),
                    q.get("reason").and_then(Json::as_str),
                ) {
                    state.quarantined.push((u, r.to_string()));
                }
            }
        }
    }
    let Ok(text) = std::fs::read_to_string(journal_path) else {
        return state;
    };
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Some(record) = parse_line(line) else {
            state.dropped_lines += 1;
            continue;
        };
        match record {
            JournalRecord::Init { spec } => {
                if state.spec.is_none() {
                    state.spec = Some(spec);
                }
            }
            JournalRecord::Lease { unit, attempt }
            | JournalRecord::Requeue { unit, attempt, .. } => {
                let e = state.attempts.entry(unit).or_insert(0);
                *e = (*e).max(attempt);
            }
            JournalRecord::Result { shard } => {
                if seen_units.insert(shard.unit, ()).is_none() {
                    state.attempts.remove(&shard.unit);
                    state.shards.push(shard);
                }
            }
            JournalRecord::Quarantine { unit, reason } => {
                if !state.quarantined.iter().any(|(u, _)| *u == unit) {
                    state.quarantined.push((unit, reason));
                }
            }
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignConfig, RunRecord, SchedulerSpec};

    fn spec() -> ServiceSpec {
        ServiceSpec {
            system: vec![("kind".into(), "campaign".into())],
            config: CampaignConfig {
                schedulers: vec![SchedulerSpec::RoundRobin],
                seed_start: 0,
                runs: 8,
                budget: 100,
                threads: 1,
            },
            unit_runs: 4,
            faults: Vec::new(),
        }
    }

    fn shard(unit: u64) -> ShardResult {
        ShardResult {
            unit,
            records: vec![(
                unit as usize * 4,
                RunRecord {
                    scheduler: "rr".into(),
                    seed: unit * 4,
                    steps: 9,
                    terminated: true,
                    violation: None,
                    error: None,
                    attempts: 1,
                    pruned: 0,
                    prefilter_hits: 0,
                    static_indep_pairs: 0,
                },
            )],
            fault_records: Vec::new(),
            fingerprints: vec![unit, unit + 100],
            degraded_runs: 0,
            cache_truncated: false,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("rsim-queue-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn journal_records_round_trip() {
        let records = [
            JournalRecord::Init { spec: spec() },
            JournalRecord::Lease { unit: 3, attempt: 1 },
            JournalRecord::Result { shard: shard(3) },
            JournalRecord::Requeue {
                unit: 3,
                attempt: 2,
                reason: "worker exited".into(),
            },
            JournalRecord::Quarantine { unit: 3, reason: "poison".into() },
        ];
        for r in records {
            assert_eq!(JournalRecord::parse(&r.to_json()).unwrap(), r);
        }
    }

    #[test]
    fn recovery_replays_the_journal() {
        let dir = tmp_dir("replay");
        {
            let (mut q, recovered) = JobQueue::open(&dir, 1000).unwrap();
            assert!(recovered.spec.is_none());
            q.append(&JournalRecord::Init { spec: spec() }).unwrap();
            q.append(&JournalRecord::Lease { unit: 0, attempt: 1 }).unwrap();
            q.append(&JournalRecord::Result { shard: shard(0) }).unwrap();
            q.append(&JournalRecord::Lease { unit: 1, attempt: 1 }).unwrap();
            q.append(&JournalRecord::Requeue {
                unit: 1,
                attempt: 1,
                reason: "killed".into(),
            })
            .unwrap();
        }
        let (_q, recovered) = JobQueue::open(&dir, 1000).unwrap();
        assert_eq!(recovered.spec.as_ref().unwrap(), &spec());
        assert_eq!(recovered.shards, vec![shard(0)]);
        assert_eq!(recovered.attempts.get(&1), Some(&1));
        assert!(!recovered.attempts.contains_key(&0), "completed units clear");
        assert_eq!(recovered.dropped_lines, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_and_later_appends_survive() {
        let dir = tmp_dir("torn");
        {
            let (mut q, _) = JobQueue::open(&dir, 1000).unwrap();
            q.append(&JournalRecord::Init { spec: spec() }).unwrap();
            // Power loss mid-write of unit 0's result...
            q.torn_append(&JournalRecord::Result { shard: shard(0) }, 25).unwrap();
            // ...and the service keeps journaling afterwards: the
            // newline repair isolates the damage to the torn line.
            q.append(&JournalRecord::Result { shard: shard(1) }).unwrap();
        }
        let (_q, recovered) = JobQueue::open(&dir, 1000).unwrap();
        assert_eq!(recovered.dropped_lines, 1, "the torn line is seen and dropped");
        assert_eq!(recovered.shards, vec![shard(1)]);
        assert_eq!(recovered.spec.as_ref().unwrap(), &spec());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checksums_are_dropped_not_fatal() {
        let dir = tmp_dir("cksum");
        {
            let (mut q, _) = JobQueue::open(&dir, 1000).unwrap();
            q.append(&JournalRecord::Init { spec: spec() }).unwrap();
            q.append(&JournalRecord::Result { shard: shard(0) }).unwrap();
        }
        // Flip one byte in the middle of the journal.
        let path = dir.join("journal.log");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let (_q, recovered) = JobQueue::open(&dir, 1000).unwrap();
        assert_eq!(recovered.dropped_lines, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_folds_into_snapshot_and_resets_journal() {
        let dir = tmp_dir("compact");
        {
            let (mut q, _) = JobQueue::open(&dir, 1000).unwrap();
            q.append(&JournalRecord::Init { spec: spec() }).unwrap();
            q.append(&JournalRecord::Result { shard: shard(0) }).unwrap();
            q.compact(
                &spec(),
                &[shard(0)],
                &[(1, 2)],
                &[(2, "poison".into())],
            )
            .unwrap();
            // Post-compaction appends land in the fresh journal.
            q.append(&JournalRecord::Result { shard: shard(3) }).unwrap();
        }
        let (_q, recovered) = JobQueue::open(&dir, 1000).unwrap();
        assert_eq!(recovered.spec.as_ref().unwrap(), &spec());
        assert_eq!(recovered.shards, vec![shard(0), shard(3)]);
        assert_eq!(recovered.attempts.get(&1), Some(&2));
        assert_eq!(recovered.quarantined, vec![(2, "poison".to_string())]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_results_from_crash_races_dedup_on_recovery() {
        let dir = tmp_dir("dup");
        {
            let (mut q, _) = JobQueue::open(&dir, 1000).unwrap();
            q.append(&JournalRecord::Init { spec: spec() }).unwrap();
            q.append(&JournalRecord::Result { shard: shard(0) }).unwrap();
            q.append(&JournalRecord::Result { shard: shard(0) }).unwrap();
        }
        let (_q, recovered) = JobQueue::open(&dir, 1000).unwrap();
        assert_eq!(recovered.shards.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
