//! The lease state machine.
//!
//! Pure state, no processes, no clocks of its own — every transition
//! takes the current [`Instant`] as an argument, which is what makes
//! the machine unit-testable without spawning anything. Each unit is
//! `Pending` (available once its backoff expires), `Leased` (held by a
//! worker, kept alive by heartbeats), `Done`, or `Quarantined` (a
//! poison unit that killed [`LeaseManager::max_attempts`] consecutive
//! leases; the service completes around it and reports the loss).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// A unit's position in the lease lifecycle.
#[derive(Clone, PartialEq, Debug)]
pub enum UnitState {
    /// Available for leasing once `not_before` (retry backoff) passes.
    Pending {
        /// Attempts so far (0 = never leased).
        attempt: usize,
        /// Earliest instant the unit may be leased again.
        not_before: Option<Instant>,
    },
    /// Held by a worker.
    Leased {
        /// This lease's attempt number (1-based).
        attempt: usize,
        /// The holding worker's id.
        worker: usize,
        /// Last heartbeat (or lease grant) instant.
        last_beat: Instant,
    },
    /// Completed; a result exists.
    Done,
    /// Failed `max_attempts` leases; withdrawn from circulation.
    Quarantined {
        /// Why the final lease failed.
        reason: String,
    },
}

/// What a death/requeue transition decided — the coordinator journals
/// these so attempt counts survive coordinator restarts.
#[derive(Clone, PartialEq, Debug)]
pub enum LeaseEvent {
    /// The unit went back to `Pending` with backoff.
    Requeued {
        /// The unit.
        unit: u64,
        /// Attempts consumed so far.
        attempt: usize,
        /// Why the lease ended.
        reason: String,
    },
    /// The unit was quarantined.
    Quarantined {
        /// The unit.
        unit: u64,
        /// Why.
        reason: String,
    },
}

/// Lease bookkeeping for every unit of a service run.
#[derive(Debug)]
pub struct LeaseManager {
    units: BTreeMap<u64, UnitState>,
    max_attempts: usize,
    backoff: Duration,
}

impl LeaseManager {
    /// A manager over `unit_ids`, all initially pending. A unit
    /// quarantines after `max_attempts` failed leases (min 1); failed
    /// lease `k` backs off `backoff * 2^(k-1)` before re-entering
    /// circulation.
    pub fn new(unit_ids: impl IntoIterator<Item = u64>, max_attempts: usize, backoff: Duration) -> LeaseManager {
        LeaseManager {
            units: unit_ids
                .into_iter()
                .map(|id| (id, UnitState::Pending { attempt: 0, not_before: None }))
                .collect(),
            max_attempts: max_attempts.max(1),
            backoff,
        }
    }

    /// Recovery: mark a unit already completed (its shard was
    /// journaled).
    pub fn mark_done(&mut self, unit: u64) {
        if let Some(state) = self.units.get_mut(&unit) {
            *state = UnitState::Done;
        }
    }

    /// Recovery: mark a unit quarantined.
    pub fn mark_quarantined(&mut self, unit: u64, reason: &str) {
        if let Some(state) = self.units.get_mut(&unit) {
            *state = UnitState::Quarantined { reason: reason.to_string() };
        }
    }

    /// Recovery: restore a unit's consumed-attempt count from the
    /// journal (no-op for units past `Pending`).
    pub fn restore_attempts(&mut self, unit: u64, attempts: usize) {
        if let Some(UnitState::Pending { attempt, .. }) = self.units.get_mut(&unit) {
            *attempt = (*attempt).max(attempts);
        }
    }

    /// The lowest-id unit that may be leased right now, if any.
    pub fn next_available(&self, now: Instant) -> Option<u64> {
        self.units.iter().find_map(|(id, state)| match state {
            UnitState::Pending { not_before, .. }
                if not_before.is_none_or(|t| now >= t) =>
            {
                Some(*id)
            }
            _ => None,
        })
    }

    /// Leases `unit` to `worker`; returns the lease's attempt number.
    /// Panics if the unit is not pending — the coordinator only leases
    /// what [`LeaseManager::next_available`] returned.
    pub fn lease(&mut self, unit: u64, worker: usize, now: Instant) -> usize {
        let state = self.units.get_mut(&unit).expect("leasing unknown unit");
        let UnitState::Pending { attempt, .. } = state else {
            panic!("leasing unit {unit} in state {state:?}");
        };
        let attempt = *attempt + 1;
        *state = UnitState::Leased { attempt, worker, last_beat: now };
        attempt
    }

    /// Records a heartbeat for `unit` (ignored unless leased —
    /// a heartbeat racing a requeue must not resurrect the lease).
    pub fn heartbeat(&mut self, unit: u64, now: Instant) {
        if let Some(UnitState::Leased { last_beat, .. }) = self.units.get_mut(&unit)
        {
            *last_beat = now;
        }
    }

    /// Marks `unit` done. Returns `false` if it already was (a
    /// duplicate result from a crash/retry race — callers drop it).
    pub fn complete(&mut self, unit: u64) -> bool {
        match self.units.get_mut(&unit) {
            Some(state @ (UnitState::Leased { .. } | UnitState::Pending { .. })) => {
                *state = UnitState::Done;
                true
            }
            _ => false,
        }
    }

    /// Ends `unit`'s current lease without a result: requeue with
    /// backoff, or quarantine once `max_attempts` leases have failed.
    pub fn fail_lease(&mut self, unit: u64, now: Instant, reason: &str) -> Option<LeaseEvent> {
        let state = self.units.get_mut(&unit)?;
        let UnitState::Leased { attempt, .. } = *state else {
            return None;
        };
        if attempt >= self.max_attempts {
            let reason = format!("attempt {attempt}/{}: {reason}", self.max_attempts);
            *state = UnitState::Quarantined { reason: reason.clone() };
            Some(LeaseEvent::Quarantined { unit, reason })
        } else {
            // Bounded exponential backoff so a crash-looping unit
            // does not monopolise the worker fleet.
            let delay = self.backoff * (1u32 << (attempt - 1).min(16) as u32);
            *state = UnitState::Pending {
                attempt,
                not_before: Some(now + delay),
            };
            Some(LeaseEvent::Requeued { unit, attempt, reason: reason.to_string() })
        }
    }

    /// Ends every lease held by `worker` (it died or was killed),
    /// returning the resulting requeue/quarantine events.
    pub fn worker_died(&mut self, worker: usize, now: Instant, reason: &str) -> Vec<LeaseEvent> {
        let held: Vec<u64> = self
            .units
            .iter()
            .filter_map(|(id, state)| match state {
                UnitState::Leased { worker: w, .. } if *w == worker => Some(*id),
                _ => None,
            })
            .collect();
        held.into_iter()
            .filter_map(|unit| self.fail_lease(unit, now, reason))
            .collect()
    }

    /// Leases whose last heartbeat is older than `timeout`:
    /// `(unit, worker)` pairs the coordinator should treat as dead.
    pub fn expired(&self, now: Instant, timeout: Duration) -> Vec<(u64, usize)> {
        self.units
            .iter()
            .filter_map(|(id, state)| match state {
                UnitState::Leased { worker, last_beat, .. }
                    if now.duration_since(*last_beat) >= timeout =>
                {
                    Some((*id, *worker))
                }
                _ => None,
            })
            .collect()
    }

    /// Every unit is `Done` or `Quarantined`: the run can merge.
    pub fn all_settled(&self) -> bool {
        self.units
            .values()
            .all(|s| matches!(s, UnitState::Done | UnitState::Quarantined { .. }))
    }

    /// The quarantined units with their reasons.
    pub fn quarantined(&self) -> Vec<(u64, String)> {
        self.units
            .iter()
            .filter_map(|(id, state)| match state {
                UnitState::Quarantined { reason } => Some((*id, reason.clone())),
                _ => None,
            })
            .collect()
    }

    /// Consumed attempts per unit that is still pending (journal
    /// compaction persists these).
    pub fn pending_attempts(&self) -> Vec<(u64, usize)> {
        self.units
            .iter()
            .filter_map(|(id, state)| match state {
                UnitState::Pending { attempt, .. } if *attempt > 0 => {
                    Some((*id, *attempt))
                }
                _ => None,
            })
            .collect()
    }

    /// The state of one unit (primarily for tests and diagnostics).
    pub fn state(&self, unit: u64) -> Option<&UnitState> {
        self.units.get(&unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr(max_attempts: usize) -> LeaseManager {
        LeaseManager::new(0..3, max_attempts, Duration::from_millis(10))
    }

    #[test]
    fn lease_complete_lifecycle() {
        let now = Instant::now();
        let mut m = mgr(3);
        assert_eq!(m.next_available(now), Some(0));
        assert_eq!(m.lease(0, 7, now), 1);
        // Unit 0 is held: the next available unit is 1.
        assert_eq!(m.next_available(now), Some(1));
        assert!(m.complete(0));
        assert!(!m.complete(0), "duplicate results are dropped");
        assert!(!m.all_settled());
    }

    #[test]
    fn death_requeues_with_backoff_then_quarantines() {
        let t0 = Instant::now();
        let mut m = mgr(2);
        m.lease(0, 1, t0);
        let events = m.worker_died(1, t0, "worker exited");
        assert!(matches!(
            events.as_slice(),
            [LeaseEvent::Requeued { unit: 0, attempt: 1, .. }]
        ));
        // Backed off: not immediately leasable, but leasable later.
        assert_eq!(m.next_available(t0), Some(1));
        let later = t0 + Duration::from_millis(50);
        assert_eq!(m.next_available(later), Some(0));
        // Second failed lease hits max_attempts → quarantine.
        m.lease(0, 2, later);
        let events = m.worker_died(2, later, "worker exited");
        assert!(matches!(
            events.as_slice(),
            [LeaseEvent::Quarantined { unit: 0, .. }]
        ));
        assert_eq!(m.quarantined().len(), 1);
        assert_eq!(m.next_available(later), Some(1));
    }

    #[test]
    fn expiry_flags_silent_leases_only() {
        let t0 = Instant::now();
        let mut m = mgr(3);
        m.lease(0, 1, t0);
        m.lease(1, 2, t0);
        let t1 = t0 + Duration::from_millis(30);
        m.heartbeat(1, t1);
        let expired = m.expired(t1 + Duration::from_millis(80), Duration::from_millis(100));
        assert_eq!(expired, vec![(0, 1)]);
    }

    #[test]
    fn heartbeat_cannot_resurrect_a_requeued_lease() {
        let t0 = Instant::now();
        let mut m = mgr(3);
        m.lease(0, 1, t0);
        m.worker_died(1, t0, "killed");
        m.heartbeat(0, t0 + Duration::from_millis(1));
        assert!(matches!(
            m.state(0),
            Some(UnitState::Pending { attempt: 1, .. })
        ));
    }

    #[test]
    fn recovery_restores_attempts_and_outcomes() {
        let now = Instant::now();
        let mut m = mgr(2);
        m.mark_done(0);
        m.mark_quarantined(1, "poison");
        m.restore_attempts(2, 1);
        assert_eq!(m.next_available(now), Some(2));
        // One attempt already consumed: the next failed lease is the
        // second and final one.
        m.lease(2, 5, now);
        let events = m.worker_died(5, now, "worker exited");
        assert!(matches!(
            events.as_slice(),
            [LeaseEvent::Quarantined { unit: 2, .. }]
        ));
        assert!(m.all_settled());
    }

    #[test]
    fn settles_when_every_unit_is_done_or_quarantined() {
        let now = Instant::now();
        let mut m = mgr(1);
        m.lease(0, 1, now);
        assert!(m.complete(0));
        m.lease(1, 1, now);
        m.worker_died(1, now, "gone");
        m.lease(2, 2, now);
        assert!(m.complete(2));
        assert!(m.all_settled());
        assert_eq!(m.pending_attempts(), Vec::new());
    }
}
