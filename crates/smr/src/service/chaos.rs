//! Built-in chaos injection.
//!
//! A [`ChaosPlan`] tells the coordinator to attack its *own* run:
//! SIGKILL the worker holding a named unit the moment it first
//! heartbeats (`kill@unit:U`), or tear the journal write of a named
//! unit's result — append a prefix of the record and drop the rest,
//! exactly what a power loss mid-`write(2)` leaves behind
//! (`torn@result:U`). Each injection fires once; the acceptance gate
//! is that the merged report converges to the unkilled single-process
//! reference anyway.

use crate::error::ModelError;
use std::collections::BTreeSet;
use std::fmt;

/// A parsed `--chaos` plan: which units to attack, each once.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ChaosPlan {
    kills: BTreeSet<u64>,
    torn: BTreeSet<u64>,
    fired_kills: BTreeSet<u64>,
    fired_torn: BTreeSet<u64>,
}

impl ChaosPlan {
    /// Parses the CLI syntax: comma-separated `kill@unit:U` and
    /// `torn@result:U` directives (empty string = no chaos).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadSpec`] naming the malformed directive.
    pub fn parse(text: &str) -> Result<ChaosPlan, ModelError> {
        let bad = |part: &str, reason: &str| ModelError::BadSpec {
            spec: format!("chaos directive `{part}`"),
            reason: reason.into(),
        };
        let mut plan = ChaosPlan::default();
        for part in text.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let unit = |prefix: &str| -> Result<u64, ModelError> {
                part.strip_prefix(prefix)
                    .ok_or_else(|| {
                        bad(part, "expected kill@unit:U or torn@result:U")
                    })?
                    .parse()
                    .map_err(|_| bad(part, "unit id must be an integer"))
            };
            if part.starts_with("kill@unit:") {
                plan.kills.insert(unit("kill@unit:")?);
            } else if part.starts_with("torn@result:") {
                plan.torn.insert(unit("torn@result:")?);
            } else {
                return Err(bad(part, "expected kill@unit:U or torn@result:U"));
            }
        }
        Ok(plan)
    }

    /// No injections configured at all?
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.torn.is_empty()
    }

    /// Should the worker holding `unit` be killed now? Fires at most
    /// once per unit.
    pub fn take_kill(&mut self, unit: u64) -> bool {
        self.kills.contains(&unit) && self.fired_kills.insert(unit)
    }

    /// Should `unit`'s result journal write be torn? Fires at most
    /// once per unit.
    pub fn take_torn(&mut self, unit: u64) -> bool {
        self.torn.contains(&unit) && self.fired_torn.insert(unit)
    }

    /// Kills injected so far.
    pub fn kills_fired(&self) -> usize {
        self.fired_kills.len()
    }

    /// Torn writes injected so far.
    pub fn torn_fired(&self) -> usize {
        self.fired_torn.len()
    }
}

impl fmt::Display for ChaosPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> =
            self.kills.iter().map(|u| format!("kill@unit:{u}")).collect();
        parts.extend(self.torn.iter().map(|u| format!("torn@result:{u}")));
        write!(f, "{}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trips() {
        let plan = ChaosPlan::parse("kill@unit:1,torn@result:3,kill@unit:4").unwrap();
        assert_eq!(plan.to_string(), "kill@unit:1,kill@unit:4,torn@result:3");
        assert_eq!(
            ChaosPlan::parse(&plan.to_string()).unwrap(),
            plan,
        );
        assert!(ChaosPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn injections_fire_exactly_once() {
        let mut plan = ChaosPlan::parse("kill@unit:2,torn@result:2").unwrap();
        assert!(!plan.take_kill(1), "unit 1 is not targeted");
        assert!(plan.take_kill(2));
        assert!(!plan.take_kill(2), "kill fires once");
        assert!(plan.take_torn(2));
        assert!(!plan.take_torn(2), "torn fires once");
        assert_eq!(plan.kills_fired(), 1);
        assert_eq!(plan.torn_fired(), 1);
    }

    #[test]
    fn malformed_directives_are_structured_errors() {
        for bad in ["kill@unit:x", "explode@unit:1", "kill@", "torn@result:"] {
            assert!(
                matches!(ChaosPlan::parse(bad), Err(ModelError::BadSpec { .. })),
                "`{bad}` should be rejected"
            );
        }
    }
}
