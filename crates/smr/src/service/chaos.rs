//! Built-in chaos injection.
//!
//! A [`ChaosPlan`] tells the coordinator to attack its *own* run:
//!
//! * **Process chaos** — SIGKILL the worker holding a named unit the
//!   moment it first heartbeats (`kill@unit:U`), or tear the journal
//!   write of a named unit's result — append a prefix of the record
//!   and drop the rest, exactly what a power loss mid-`write(2)`
//!   leaves behind (`torn@result:U`). Each injection fires once.
//! * **Network chaos** — a deterministic in-process proxy sitting on
//!   every coordinator-side stream. Frames crossing the proxy (in
//!   either direction, handshakes excepted) are numbered by one
//!   global counter, and directives name counter values: `drop@N`
//!   discards frame N, `delay@N` holds it ~50 ms, `dup@N` delivers it
//!   twice, `corrupt@N` flips a payload byte before checksum
//!   verification, `partition@A-B` drops every frame in `[A,B)` *and*
//!   severs the carrying connection. Because the schedule is a pure
//!   function of the frame counter, the same chaos spec injures the
//!   same logical traffic on every run — which is what makes the
//!   byte-identity gate meaningful under network fault injection.
//!
//! The acceptance gate for all of it is the same: the merged report
//! converges to the uninjured single-process reference anyway.

use crate::error::ModelError;
use std::collections::BTreeSet;
use std::fmt;
use std::time::Duration;

/// What the network-chaos proxy decides to do with one frame.
#[derive(Clone, PartialEq, Debug)]
pub enum NetAction {
    /// Pass the frame through untouched.
    Deliver,
    /// Discard the frame silently.
    Drop,
    /// Hold the frame for the given duration, then deliver it.
    Delay(Duration),
    /// Deliver the frame twice.
    Dup,
    /// Flip one payload byte, then deliver (the checksum catches it).
    Corrupt,
    /// Discard the frame and sever the carrying connection (the
    /// partition directive: the link is down, not just lossy).
    Sever,
}

/// A parsed `--chaos` plan: which units and which wire frames to
/// attack.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ChaosPlan {
    kills: BTreeSet<u64>,
    torn: BTreeSet<u64>,
    fired_kills: BTreeSet<u64>,
    fired_torn: BTreeSet<u64>,
    net_drop: BTreeSet<u64>,
    net_delay: BTreeSet<u64>,
    net_dup: BTreeSet<u64>,
    net_corrupt: BTreeSet<u64>,
    net_partitions: Vec<(u64, u64)>,
}

impl ChaosPlan {
    /// Parses the CLI syntax: comma-separated `kill@unit:U`,
    /// `torn@result:U`, `drop@N`, `delay@N`, `dup@N`, `corrupt@N`,
    /// and `partition@A-B` directives (empty string = no chaos).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadSpec`] naming the malformed directive.
    pub fn parse(text: &str) -> Result<ChaosPlan, ModelError> {
        let bad = |part: &str, reason: &str| ModelError::BadSpec {
            spec: format!("chaos directive `{part}`"),
            reason: reason.into(),
        };
        let mut plan = ChaosPlan::default();
        for part in text.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let num = |prefix: &str| -> Result<u64, ModelError> {
                part.strip_prefix(prefix)
                    .expect("caller checked the prefix")
                    .parse()
                    .map_err(|_| bad(part, "expected an integer after `@`"))
            };
            if part.starts_with("kill@unit:") {
                plan.kills.insert(
                    part.strip_prefix("kill@unit:")
                        .expect("checked")
                        .parse()
                        .map_err(|_| bad(part, "unit id must be an integer"))?,
                );
            } else if part.starts_with("torn@result:") {
                plan.torn.insert(
                    part.strip_prefix("torn@result:")
                        .expect("checked")
                        .parse()
                        .map_err(|_| bad(part, "unit id must be an integer"))?,
                );
            } else if part.starts_with("drop@") {
                plan.net_drop.insert(num("drop@")?);
            } else if part.starts_with("delay@") {
                plan.net_delay.insert(num("delay@")?);
            } else if part.starts_with("dup@") {
                plan.net_dup.insert(num("dup@")?);
            } else if part.starts_with("corrupt@") {
                plan.net_corrupt.insert(num("corrupt@")?);
            } else if let Some(range) = part.strip_prefix("partition@") {
                let (a, b) = range
                    .split_once('-')
                    .ok_or_else(|| bad(part, "expected partition@A-B"))?;
                let a: u64 = a
                    .parse()
                    .map_err(|_| bad(part, "partition bounds must be integers"))?;
                let b: u64 = b
                    .parse()
                    .map_err(|_| bad(part, "partition bounds must be integers"))?;
                if a >= b {
                    return Err(bad(part, "partition range must be non-empty (A < B)"));
                }
                plan.net_partitions.push((a, b));
            } else {
                return Err(bad(
                    part,
                    "expected kill@unit:U, torn@result:U, drop@N, delay@N, \
                     dup@N, corrupt@N, or partition@A-B",
                ));
            }
        }
        plan.net_partitions.sort_unstable();
        Ok(plan)
    }

    /// No injections configured at all?
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.torn.is_empty() && !self.has_net()
    }

    /// Any network directives configured?
    pub fn has_net(&self) -> bool {
        !(self.net_drop.is_empty()
            && self.net_delay.is_empty()
            && self.net_dup.is_empty()
            && self.net_corrupt.is_empty()
            && self.net_partitions.is_empty())
    }

    /// Should the worker holding `unit` be killed now? Fires at most
    /// once per unit.
    pub fn take_kill(&mut self, unit: u64) -> bool {
        self.kills.contains(&unit) && self.fired_kills.insert(unit)
    }

    /// Should `unit`'s result journal write be torn? Fires at most
    /// once per unit.
    pub fn take_torn(&mut self, unit: u64) -> bool {
        self.torn.contains(&unit) && self.fired_torn.insert(unit)
    }

    /// Kills injected so far.
    pub fn kills_fired(&self) -> usize {
        self.fired_kills.len()
    }

    /// Torn writes injected so far.
    pub fn torn_fired(&self) -> usize {
        self.fired_torn.len()
    }

    /// Builds the runtime network-chaos proxy for this plan.
    pub fn net_chaos(&self) -> NetChaos {
        NetChaos {
            drop: self.net_drop.clone(),
            delay: self.net_delay.clone(),
            dup: self.net_dup.clone(),
            corrupt: self.net_corrupt.clone(),
            partitions: self.net_partitions.clone(),
            counter: 0,
            dropped: 0,
            delayed: 0,
            duplicated: 0,
            corrupted: 0,
            severed: 0,
        }
    }
}

impl fmt::Display for ChaosPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> =
            self.kills.iter().map(|u| format!("kill@unit:{u}")).collect();
        parts.extend(self.torn.iter().map(|u| format!("torn@result:{u}")));
        parts.extend(self.net_drop.iter().map(|n| format!("drop@{n}")));
        parts.extend(self.net_delay.iter().map(|n| format!("delay@{n}")));
        parts.extend(self.net_dup.iter().map(|n| format!("dup@{n}")));
        parts.extend(self.net_corrupt.iter().map(|n| format!("corrupt@{n}")));
        parts.extend(
            self.net_partitions.iter().map(|(a, b)| format!("partition@{a}-{b}")),
        );
        write!(f, "{}", parts.join(","))
    }
}

/// How long `delay@N` holds a frame. Long enough to reorder traffic
/// against heartbeat cadence, short enough to stay inside any sane
/// lease window.
pub const CHAOS_DELAY: Duration = Duration::from_millis(50);

/// The runtime state of the network-chaos proxy: one global frame
/// counter over every non-handshake frame the coordinator sends or
/// receives, consulted under a single lock so the numbering is a
/// total order regardless of connection interleaving.
#[derive(Debug)]
pub struct NetChaos {
    drop: BTreeSet<u64>,
    delay: BTreeSet<u64>,
    dup: BTreeSet<u64>,
    corrupt: BTreeSet<u64>,
    partitions: Vec<(u64, u64)>,
    counter: u64,
    dropped: usize,
    delayed: usize,
    duplicated: usize,
    corrupted: usize,
    severed: usize,
}

impl NetChaos {
    /// Numbers the next frame and decides its fate. Partition wins
    /// over everything (the link is *down*); the first frame of a
    /// partition window severs, the rest drop.
    pub fn next_frame(&mut self) -> NetAction {
        let n = self.counter;
        self.counter += 1;
        if let Some(&(a, _)) =
            self.partitions.iter().find(|&&(a, b)| n >= a && n < b)
        {
            if n == a {
                self.severed += 1;
                return NetAction::Sever;
            }
            self.dropped += 1;
            return NetAction::Drop;
        }
        if self.drop.contains(&n) {
            self.dropped += 1;
            NetAction::Drop
        } else if self.delay.contains(&n) {
            self.delayed += 1;
            NetAction::Delay(CHAOS_DELAY)
        } else if self.dup.contains(&n) {
            self.duplicated += 1;
            NetAction::Dup
        } else if self.corrupt.contains(&n) {
            self.corrupted += 1;
            NetAction::Corrupt
        } else {
            NetAction::Deliver
        }
    }

    /// (dropped, delayed, duplicated, corrupted, severed) so far.
    pub fn counts(&self) -> (usize, usize, usize, usize, usize) {
        (self.dropped, self.delayed, self.duplicated, self.corrupted, self.severed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trips() {
        let plan = ChaosPlan::parse("kill@unit:1,torn@result:3,kill@unit:4").unwrap();
        assert_eq!(plan.to_string(), "kill@unit:1,kill@unit:4,torn@result:3");
        assert_eq!(
            ChaosPlan::parse(&plan.to_string()).unwrap(),
            plan,
        );
        assert!(ChaosPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn net_directives_round_trip_and_flag_has_net() {
        let plan = ChaosPlan::parse(
            "drop@7,delay@2,dup@11,corrupt@5,partition@20-23,kill@unit:0",
        )
        .unwrap();
        assert!(plan.has_net());
        assert!(!plan.is_empty());
        assert_eq!(ChaosPlan::parse(&plan.to_string()).unwrap(), plan);
        let quiet = ChaosPlan::parse("kill@unit:1").unwrap();
        assert!(!quiet.has_net(), "process chaos alone is not net chaos");
    }

    #[test]
    fn injections_fire_exactly_once() {
        let mut plan = ChaosPlan::parse("kill@unit:2,torn@result:2").unwrap();
        assert!(!plan.take_kill(1), "unit 1 is not targeted");
        assert!(plan.take_kill(2));
        assert!(!plan.take_kill(2), "kill fires once");
        assert!(plan.take_torn(2));
        assert!(!plan.take_torn(2), "torn fires once");
        assert_eq!(plan.kills_fired(), 1);
        assert_eq!(plan.torn_fired(), 1);
    }

    #[test]
    fn net_chaos_schedule_is_a_pure_function_of_the_counter() {
        let plan =
            ChaosPlan::parse("drop@1,delay@2,dup@3,corrupt@4,partition@6-8").unwrap();
        let run = |mut chaos: NetChaos| -> Vec<NetAction> {
            (0..10).map(|_| chaos.next_frame()).collect()
        };
        let first = run(plan.net_chaos());
        assert_eq!(first, run(plan.net_chaos()), "schedule must be deterministic");
        assert_eq!(
            first,
            vec![
                NetAction::Deliver,
                NetAction::Drop,
                NetAction::Delay(CHAOS_DELAY),
                NetAction::Dup,
                NetAction::Corrupt,
                NetAction::Deliver,
                NetAction::Sever,
                NetAction::Drop,
                NetAction::Deliver,
                NetAction::Deliver,
            ]
        );
        let mut chaos = plan.net_chaos();
        for _ in 0..10 {
            chaos.next_frame();
        }
        assert_eq!(chaos.counts(), (2, 1, 1, 1, 1));
    }

    #[test]
    fn malformed_directives_are_structured_errors() {
        for bad in [
            "kill@unit:x",
            "explode@unit:1",
            "kill@",
            "torn@result:",
            "drop@x",
            "partition@5",
            "partition@9-3",
            "partition@4-4",
        ] {
            assert!(
                matches!(ChaosPlan::parse(bad), Err(ModelError::BadSpec { .. })),
                "`{bad}` should be rejected"
            );
        }
    }
}
