//! The per-claim campaign summary.
//!
//! A merged report certifies *outcomes*; the summary documents the
//! *operation* that produced them, one row per claim — a claim being
//! one scheduler of an ordinary campaign or one fault plan of a fault
//! campaign: how many samples were merged, from how many shards, how
//! many units needed retries or ended quarantined, and how many
//! failures surfaced. The table is what a certification reader checks
//! first ("did every claim actually get its samples?"), so the service
//! always writes it to `summary.json` in the state directory and
//! renders it as text under `--summary`. Everything here is derived
//! from the merged data and the operational counters — the merged
//! report itself never depends on the summary (determinism contract).

use crate::json::{escape, write_atomic, Json};
use crate::service::coordinator::ServiceStats;
use std::path::Path;

/// One claim's row: a scheduler (ordinary campaign) or a fault plan
/// (fault campaign).
#[derive(Clone, PartialEq, Debug)]
pub struct ClaimSummary {
    /// The scheduler spec or fault-plan syntax.
    pub claim: String,
    /// Runs merged for this claim.
    pub samples: usize,
    /// Work units that completed for this claim.
    pub shards: usize,
    /// Units of this claim that took more than one lease attempt.
    pub retried_units: usize,
    /// Units of this claim lost to quarantine.
    pub quarantined_units: usize,
    /// Failing runs recorded under this claim.
    pub failures: usize,
    /// Schedule steps executed across this claim's merged runs (the
    /// "visited" side of the reduction metric).
    pub visited: usize,
    /// Happens-before redundancy across this claim's merged runs
    /// ([`crate::campaign::RunRecord::pruned`] summed) — a per-run sum,
    /// so the merged tally is byte-identical to a single-process run.
    pub pruned: usize,
    /// Static-prefilter confirmations across this claim's merged runs
    /// ([`crate::campaign::RunRecord::prefilter_hits`] summed).
    pub prefilter_hits: usize,
}

/// The whole-run summary stored in the JSON aggregate and rendered by
/// `campaign-service --summary`.
#[derive(Clone, PartialEq, Debug)]
pub struct ServiceSummary {
    /// The campaign identity ([`crate::service::ServiceSpec::identity`]).
    pub spec_id: String,
    /// `"stdio"` or `"tcp"`.
    pub transport: String,
    /// Wall-clock duration of this service run, milliseconds.
    pub wall_ms: u64,
    /// Configured worker-fleet size.
    pub workers: usize,
    /// Worker sessions opened (TCP handshakes, or stdio spawns).
    pub sessions: usize,
    /// Sessions that survived at least one reconnect.
    pub resumed_sessions: usize,
    /// Corrupt frames rejected at the wire (checksum/prefix failures).
    pub corrupt_frames: usize,
    /// Network chaos injected: (dropped, delayed, duplicated,
    /// corrupted, severed) frames.
    pub net: (usize, usize, usize, usize, usize),
    /// Distinct configuration fingerprints across all merged shards.
    pub fingerprint_coverage: usize,
    /// Per-claim rows, in matrix order.
    pub claims: Vec<ClaimSummary>,
}

impl ServiceSummary {
    /// Serialises the summary as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"spec_id\": {},\n", escape(&self.spec_id)));
        out.push_str(&format!("  \"transport\": {},\n", escape(&self.transport)));
        out.push_str(&format!("  \"wall_ms\": {},\n", self.wall_ms));
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!("  \"sessions\": {},\n", self.sessions));
        out.push_str(&format!(
            "  \"resumed_sessions\": {},\n",
            self.resumed_sessions
        ));
        out.push_str(&format!("  \"corrupt_frames\": {},\n", self.corrupt_frames));
        let (dropped, delayed, duplicated, corrupted, severed) = self.net;
        out.push_str(&format!(
            "  \"net\": {{\"dropped\": {dropped}, \"delayed\": {delayed}, \
             \"duplicated\": {duplicated}, \"corrupted\": {corrupted}, \
             \"severed\": {severed}}},\n"
        ));
        out.push_str(&format!(
            "  \"fingerprint_coverage\": {},\n",
            self.fingerprint_coverage
        ));
        out.push_str("  \"claims\": [\n");
        for (i, c) in self.claims.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"claim\": {}, \"samples\": {}, \"shards\": {}, \
                 \"retried_units\": {}, \"quarantined_units\": {}, \
                 \"failures\": {}, \"visited\": {}, \"pruned\": {}, \
                 \"prefilter_hits\": {}}}{}\n",
                escape(&c.claim),
                c.samples,
                c.shards,
                c.retried_units,
                c.quarantined_units,
                c.failures,
                c.visited,
                c.pruned,
                c.prefilter_hits,
                if i + 1 < self.claims.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a summary from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::ModelError::BadSpec`] on malformed JSON
    /// or missing fields.
    pub fn parse_str(text: &str) -> Result<ServiceSummary, crate::error::ModelError> {
        let bad = |reason: &str| crate::error::ModelError::BadSpec {
            spec: "service summary".into(),
            reason: reason.into(),
        };
        let doc = Json::parse(text)?;
        let s = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(&format!("missing `{key}`")))
        };
        let n = |key: &str| {
            doc.get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| bad(&format!("missing `{key}`")))
        };
        let net = doc.get("net").ok_or_else(|| bad("missing `net`"))?;
        let netn = |key: &str| {
            net.get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| bad(&format!("missing `net.{key}`")))
        };
        let mut claims = Vec::new();
        for entry in doc
            .get("claims")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `claims`"))?
        {
            let f = |key: &str| {
                entry
                    .get(key)
                    .and_then(Json::as_usize)
                    .ok_or_else(|| bad(&format!("missing claim `{key}`")))
            };
            claims.push(ClaimSummary {
                claim: entry
                    .get("claim")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("missing claim `claim`"))?
                    .to_string(),
                samples: f("samples")?,
                shards: f("shards")?,
                retried_units: f("retried_units")?,
                quarantined_units: f("quarantined_units")?,
                failures: f("failures")?,
                // Absent in pre-DPOR summaries: no tallies recorded.
                visited: entry.get("visited").and_then(Json::as_usize).unwrap_or(0),
                pruned: entry.get("pruned").and_then(Json::as_usize).unwrap_or(0),
                // Absent in pre-interference summaries.
                prefilter_hits: entry
                    .get("prefilter_hits")
                    .and_then(Json::as_usize)
                    .unwrap_or(0),
            });
        }
        Ok(ServiceSummary {
            spec_id: s("spec_id")?,
            transport: s("transport")?,
            wall_ms: doc
                .get("wall_ms")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("missing `wall_ms`"))?,
            workers: n("workers")?,
            sessions: n("sessions")?,
            resumed_sessions: n("resumed_sessions")?,
            corrupt_frames: n("corrupt_frames")?,
            net: (
                netn("dropped")?,
                netn("delayed")?,
                netn("duplicated")?,
                netn("corrupted")?,
                netn("severed")?,
            ),
            fingerprint_coverage: n("fingerprint_coverage")?,
            claims,
        })
    }

    /// Renders the human-readable table (the `--summary` output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("campaign summary: {}\n", self.spec_id));
        out.push_str(&format!(
            "  transport={} wall={}ms workers={} sessions={} ({} resumed)\n",
            self.transport, self.wall_ms, self.workers, self.sessions,
            self.resumed_sessions,
        ));
        let (dropped, delayed, duplicated, corrupted, severed) = self.net;
        out.push_str(&format!(
            "  wire: {} corrupt frames rejected; chaos {} dropped, {} delayed, \
             {} duplicated, {} corrupted, {} severed\n",
            self.corrupt_frames, dropped, delayed, duplicated, corrupted, severed,
        ));
        out.push_str(&format!(
            "  fingerprint coverage: {} distinct configurations\n",
            self.fingerprint_coverage
        ));
        let claim_width = self
            .claims
            .iter()
            .map(|c| c.claim.len())
            .chain(std::iter::once("claim".len()))
            .max()
            .unwrap_or(5);
        out.push_str(&format!(
            "  {:<claim_width$}  {:>8}  {:>6}  {:>7}  {:>11}  {:>8}  {:>8}  {:>8}  {:>9}  {:>9}\n",
            "claim",
            "samples",
            "shards",
            "retried",
            "quarantined",
            "failures",
            "visited",
            "pruned",
            "prefilter",
            "reduction",
        ));
        for c in &self.claims {
            let reduction = if c.visited == 0 {
                1.0
            } else {
                (c.visited + c.pruned) as f64 / c.visited as f64
            };
            out.push_str(&format!(
                "  {:<claim_width$}  {:>8}  {:>6}  {:>7}  {:>11}  {:>8}  {:>8}  {:>8}  {:>9}  {:>8.2}x\n",
                c.claim,
                c.samples,
                c.shards,
                c.retried_units,
                c.quarantined_units,
                c.failures,
                c.visited,
                c.pruned,
                c.prefilter_hits,
                reduction,
            ));
        }
        out
    }

    /// Writes the summary atomically to `dir/summary.json`.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::error::ModelError::Io`] from the atomic
    /// write path.
    pub fn store(&self, dir: &Path) -> Result<(), crate::error::ModelError> {
        write_atomic(&dir.join("summary.json"), &self.to_json()).map_err(|e| {
            crate::error::ModelError::Service {
                context: "writing summary.json".into(),
                reason: e.to_string(),
            }
        })
    }
}

/// Folds a finished run into the summary. `claims` are the matrix's
/// major-axis labels in order; `per_claim` maps each row to
/// `(samples, shards, retried_units, quarantined_units, failures)`.
pub fn build_summary(
    spec_id: &str,
    transport: &str,
    wall_ms: u64,
    stats: &ServiceStats,
    workers: usize,
    fingerprint_coverage: usize,
    rows: Vec<ClaimSummary>,
) -> ServiceSummary {
    ServiceSummary {
        spec_id: spec_id.to_string(),
        transport: transport.to_string(),
        wall_ms,
        workers,
        sessions: stats.sessions,
        resumed_sessions: stats.resumed_sessions,
        corrupt_frames: stats.corrupt_frames,
        net: (
            stats.net_dropped,
            stats.net_delayed,
            stats.net_duplicated,
            stats.net_corrupted,
            stats.net_severed,
        ),
        fingerprint_coverage,
        claims: rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> ServiceSummary {
        ServiceSummary {
            spec_id: "protocol=racing sched=rr,random seeds=0+40 budget=2000".into(),
            transport: "tcp".into(),
            wall_ms: 1234,
            workers: 3,
            sessions: 5,
            resumed_sessions: 2,
            corrupt_frames: 1,
            net: (4, 2, 1, 1, 1),
            fingerprint_coverage: 17,
            claims: vec![
                ClaimSummary {
                    claim: "rr".into(),
                    samples: 40,
                    shards: 5,
                    retried_units: 1,
                    quarantined_units: 0,
                    failures: 0,
                    visited: 800,
                    pruned: 120,
                    prefilter_hits: 30,
                },
                ClaimSummary {
                    claim: "random".into(),
                    samples: 40,
                    shards: 5,
                    retried_units: 0,
                    quarantined_units: 0,
                    failures: 2,
                    visited: 760,
                    pruned: 95,
                    prefilter_hits: 0,
                },
            ],
        }
    }

    #[test]
    fn summary_round_trips_through_json() {
        let s = summary();
        assert_eq!(ServiceSummary::parse_str(&s.to_json()).unwrap(), s);
    }

    #[test]
    fn render_lists_every_claim_row() {
        let text = summary().render();
        assert!(text.contains("claim"), "{text}");
        assert!(text.contains("rr"), "{text}");
        assert!(text.contains("random"), "{text}");
        assert!(text.contains("2 resumed"), "{text}");
        assert!(text.contains("1 corrupt frames rejected"), "{text}");
        assert!(text.contains("17 distinct configurations"), "{text}");
        // The reduction columns: visited/pruned tallies, the static
        // prefilter tally, and the factor.
        assert!(text.contains("visited"), "{text}");
        assert!(text.contains("pruned"), "{text}");
        assert!(text.contains("prefilter"), "{text}");
        assert!(text.contains("800"), "{text}");
        assert!(text.contains("30"), "{text}");
        assert!(text.contains("1.15x"), "{text}");
    }
}
