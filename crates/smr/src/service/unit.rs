//! Service specs and self-describing work units.
//!
//! A [`ServiceSpec`] is the whole campaign; [`ServiceSpec::partition`]
//! cuts its matrix into [`WorkUnit`]s, each carrying *everything* a
//! worker process needs to execute it — the system description, one
//! scheduler, a seed sub-range, the budget, and the global matrix
//! offset its records map back through. Units are self-describing on
//! purpose: a unit recovered from the journal months later, or leased
//! to a worker on a different machine, still means exactly one thing.

use crate::campaign::{campaign_spec_id, CampaignConfig, SchedulerSpec};
use crate::error::ModelError;
use crate::json::{escape, Json};

/// The full description of a service campaign: an ordered key/value
/// system description (the CLI interprets it; the service treats it as
/// opaque, exactly like [`crate::bundle::ReplayBundle::system`]), the
/// campaign shape, and the partition grain.
#[derive(Clone, PartialEq, Debug)]
pub struct ServiceSpec {
    /// Ordered key/value system description (e.g. `kind=campaign`,
    /// `protocol=racing`, `procs=3`, `m=2`, `rounds=3`).
    pub system: Vec<(String, String)>,
    /// The campaign shape. `threads` is ignored by the service —
    /// workers execute units single-threaded so checkpoint state never
    /// interleaves.
    pub config: CampaignConfig,
    /// Seeds per work unit (the partition grain). The last unit of a
    /// scheduler may be smaller.
    pub unit_runs: usize,
    /// Fault plans, in their parseable syntax. Empty for ordinary
    /// campaigns; non-empty switches the partition to the fault
    /// matrix: plans × seeds under the *first* scheduler (the base),
    /// exactly the matrix `campaign --faults` walks single-process.
    pub faults: Vec<String>,
}

impl ServiceSpec {
    /// The campaign identity this service run must match on resume:
    /// system description plus every matrix-shaping parameter
    /// (including the fault-plan list when present).
    pub fn identity(&self) -> String {
        let mut desc: Vec<String> =
            self.system.iter().map(|(k, v)| format!("{k}={v}")).collect();
        if !self.faults.is_empty() {
            desc.push(format!("faults={}", self.faults.join(";")));
        }
        campaign_spec_id(&desc.join(","), &self.config)
    }

    /// Serialises the spec as JSON. The `faults` field is emitted only
    /// when non-empty so pre-fault journals stay byte-identical.
    pub fn to_json(&self) -> String {
        let faults = if self.faults.is_empty() {
            String::new()
        } else {
            format!(
                ", \"faults\": [{}]",
                self.faults
                    .iter()
                    .map(|p| escape(p))
                    .collect::<Vec<_>>()
                    .join(", "),
            )
        };
        format!(
            "{{\"system\": {{{}}}, \"schedulers\": [{}], \"seed_start\": {}, \
             \"runs\": {}, \"budget\": {}, \"unit_runs\": {}{faults}}}",
            self.system
                .iter()
                .map(|(k, v)| format!("{}: {}", escape(k), escape(v)))
                .collect::<Vec<_>>()
                .join(", "),
            self.config
                .schedulers
                .iter()
                .map(|s| escape(&s.to_string()))
                .collect::<Vec<_>>()
                .join(", "),
            self.config.seed_start,
            self.config.runs,
            self.config.budget,
            self.unit_runs,
        )
    }

    /// Parses a spec from a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadSpec`] on missing or mistyped fields.
    pub fn parse(doc: &Json) -> Result<ServiceSpec, ModelError> {
        let bad = |reason: &str| ModelError::BadSpec {
            spec: "service spec".into(),
            reason: reason.into(),
        };
        let mut system = Vec::new();
        match doc.get("system") {
            Some(Json::Obj(members)) => {
                for (key, value) in members {
                    let value = value
                        .as_str()
                        .ok_or_else(|| bad("`system` values must be strings"))?;
                    system.push((key.clone(), value.to_string()));
                }
            }
            _ => return Err(bad("missing `system` object")),
        }
        let mut schedulers = Vec::new();
        for s in doc
            .get("schedulers")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `schedulers` array"))?
        {
            schedulers.push(SchedulerSpec::parse(
                s.as_str().ok_or_else(|| bad("bad scheduler entry"))?,
            )?);
        }
        if schedulers.is_empty() {
            return Err(bad("`schedulers` must be non-empty"));
        }
        let num = |key: &str| {
            doc.get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| bad(&format!("missing `{key}`")))
        };
        Ok(ServiceSpec {
            system,
            config: CampaignConfig {
                schedulers,
                seed_start: doc
                    .get("seed_start")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("missing `seed_start`"))?,
                runs: num("runs")?,
                budget: num("budget")?,
                threads: 1,
            },
            unit_runs: num("unit_runs")?.max(1),
            faults: match doc.get("faults") {
                None => Vec::new(),
                Some(arr) => arr
                    .as_arr()
                    .ok_or_else(|| bad("`faults` must be an array"))?
                    .iter()
                    .map(|p| {
                        p.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| bad("`faults` entries must be strings"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            },
        })
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadSpec`] on malformed JSON or fields.
    pub fn parse_str(text: &str) -> Result<ServiceSpec, ModelError> {
        ServiceSpec::parse(&Json::parse(text)?)
    }

    /// Total runs in the campaign matrix: schedulers × seeds for an
    /// ordinary campaign, plans × seeds for a fault campaign.
    pub fn total_runs(&self) -> usize {
        if self.faults.is_empty() {
            self.config.schedulers.len() * self.config.runs
        } else {
            self.faults.len() * self.config.runs
        }
    }

    /// Cuts the matrix into work units: major-axis (schedulers, or
    /// fault plans when `faults` is non-empty), then seed chunks of
    /// `unit_runs`. The partition is a pure function of the spec —
    /// every coordinator (re)start derives the identical unit list,
    /// which is what lets the journal refer to units by id alone.
    pub fn partition(&self) -> Vec<WorkUnit> {
        let grain = self.unit_runs.max(1);
        let mut units = Vec::new();
        let base_sched = self.config.schedulers[0].to_string();
        let majors: Vec<(String, String)> = if self.faults.is_empty() {
            self.config
                .schedulers
                .iter()
                .map(|s| (s.to_string(), String::new()))
                .collect()
        } else {
            // Fault matrix: plan-major under the single base scheduler,
            // matching `run_fault_campaign`'s plan-major index order.
            self.faults
                .iter()
                .map(|p| (base_sched.clone(), p.clone()))
                .collect()
        };
        for (mi, (sched, plan)) in majors.iter().enumerate() {
            let mut off = 0;
            while off < self.config.runs {
                let runs = grain.min(self.config.runs - off);
                units.push(WorkUnit {
                    id: units.len() as u64,
                    index_base: mi * self.config.runs + off,
                    scheduler: sched.clone(),
                    plan: plan.clone(),
                    seed_start: self.config.seed_start + off as u64,
                    runs,
                    budget: self.config.budget,
                    system: self.system.clone(),
                });
                off += runs;
            }
        }
        units
    }
}

/// One leasable slice of the campaign matrix: a single scheduler, a
/// contiguous seed range, and the system description — everything a
/// worker process needs, with no access to the coordinator's state.
#[derive(Clone, PartialEq, Debug)]
pub struct WorkUnit {
    /// Stable unit id (position in the deterministic partition).
    pub id: u64,
    /// Global matrix index of this unit's first run; local run `i`
    /// maps to global index `index_base + i`.
    pub index_base: usize,
    /// The scheduler spec, in its parseable syntax.
    pub scheduler: String,
    /// The fault plan, in its parseable syntax — empty for ordinary
    /// campaign units. A fault unit runs its seed range under this one
    /// crash/stall placement instead of a plain campaign slice.
    pub plan: String,
    /// First seed of the unit's range.
    pub seed_start: u64,
    /// Runs in the unit.
    pub runs: usize,
    /// Step budget per run.
    pub budget: usize,
    /// Ordered key/value system description (see
    /// [`ServiceSpec::system`]).
    pub system: Vec<(String, String)>,
}

impl WorkUnit {
    /// The identity stamped into this unit's worker checkpoint, so a
    /// re-leased worker can only resume state written for *this* unit
    /// of *this* campaign (see
    /// [`crate::campaign::CampaignCheckpoint::ensure_matches`]).
    pub fn spec_id(&self) -> String {
        let desc: Vec<String> =
            self.system.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let plan = if self.plan.is_empty() {
            String::new()
        } else {
            format!(" plan={}", self.plan)
        };
        format!(
            "unit={} base={} {} sched={}{plan} seeds={}+{} budget={}",
            self.id,
            self.index_base,
            desc.join(","),
            self.scheduler,
            self.seed_start,
            self.runs,
            self.budget,
        )
    }

    /// Serialises the unit as JSON. The `plan` field is emitted only
    /// when non-empty so pre-fault journals stay byte-identical.
    pub fn to_json(&self) -> String {
        let plan = if self.plan.is_empty() {
            String::new()
        } else {
            format!(", \"plan\": {}", escape(&self.plan))
        };
        format!(
            "{{\"id\": {}, \"index_base\": {}, \"scheduler\": {}{plan}, \
             \"seed_start\": {}, \"runs\": {}, \"budget\": {}, \
             \"system\": {{{}}}}}",
            self.id,
            self.index_base,
            escape(&self.scheduler),
            self.seed_start,
            self.runs,
            self.budget,
            self.system
                .iter()
                .map(|(k, v)| format!("{}: {}", escape(k), escape(v)))
                .collect::<Vec<_>>()
                .join(", "),
        )
    }

    /// Parses a unit from a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadSpec`] on missing or mistyped fields.
    pub fn parse(doc: &Json) -> Result<WorkUnit, ModelError> {
        let bad = |reason: &str| ModelError::BadSpec {
            spec: "work unit".into(),
            reason: reason.into(),
        };
        let mut system = Vec::new();
        match doc.get("system") {
            Some(Json::Obj(members)) => {
                for (key, value) in members {
                    let value = value
                        .as_str()
                        .ok_or_else(|| bad("`system` values must be strings"))?;
                    system.push((key.clone(), value.to_string()));
                }
            }
            _ => return Err(bad("missing `system` object")),
        }
        let num = |key: &str| {
            doc.get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| bad(&format!("missing `{key}`")))
        };
        Ok(WorkUnit {
            id: doc
                .get("id")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("missing `id`"))?,
            index_base: num("index_base")?,
            scheduler: doc
                .get("scheduler")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("missing `scheduler`"))?
                .to_string(),
            plan: doc
                .get("plan")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            seed_start: doc
                .get("seed_start")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("missing `seed_start`"))?,
            runs: num("runs")?,
            budget: num("budget")?,
            system,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ServiceSpec {
        ServiceSpec {
            system: vec![
                ("kind".into(), "campaign".into()),
                ("protocol".into(), "racing".into()),
                ("procs".into(), "3".into()),
            ],
            config: CampaignConfig {
                schedulers: vec![
                    SchedulerSpec::RoundRobin,
                    SchedulerSpec::Random,
                ],
                seed_start: 5,
                runs: 10,
                budget: 500,
                threads: 1,
            },
            unit_runs: 4,
            faults: Vec::new(),
        }
    }

    fn fault_spec() -> ServiceSpec {
        let mut s = spec();
        s.config.schedulers = vec![SchedulerSpec::RoundRobin];
        s.faults = vec!["crash@0:2".into(), "crash@1:2".into(), "crash@2:2".into()];
        s
    }

    #[test]
    fn spec_round_trips_through_json() {
        let s = spec();
        assert_eq!(ServiceSpec::parse_str(&s.to_json()).unwrap(), s);
        let f = fault_spec();
        assert_eq!(ServiceSpec::parse_str(&f.to_json()).unwrap(), f);
    }

    #[test]
    fn faultless_spec_json_has_no_faults_field() {
        assert!(
            !spec().to_json().contains("faults"),
            "pre-fault journal byte-compatibility requires omitting the field"
        );
    }

    #[test]
    fn fault_partition_is_plan_major_under_the_base_scheduler() {
        let f = fault_spec();
        let units = f.partition();
        // 3 plans × 10 runs at grain 4 → (4+4+2) × 3.
        assert_eq!(units.len(), 9);
        let covered: usize = units.iter().map(|u| u.runs).sum();
        assert_eq!(covered, f.total_runs());
        assert_eq!(f.total_runs(), 30);
        for u in &units {
            assert_eq!(u.scheduler, "rr", "fault units run the base scheduler");
            assert!(!u.plan.is_empty());
        }
        // Plan-major tiling matches run_fault_campaign's index order.
        assert_eq!(units[3].plan, "crash@1:2");
        assert_eq!(units[3].index_base, 10);
        assert_eq!(units[3].seed_start, 5);
        assert_eq!(units[8].plan, "crash@2:2");
        assert_eq!(units[8].index_base, 28);
    }

    #[test]
    fn fault_plans_change_the_identity() {
        assert_ne!(spec().identity(), fault_spec().identity());
        let mut other = fault_spec();
        other.faults.pop();
        assert_ne!(fault_spec().identity(), other.identity());
        assert_eq!(fault_spec().identity(), fault_spec().identity());
    }

    #[test]
    fn partition_tiles_the_matrix_exactly() {
        let s = spec();
        let units = s.partition();
        // 10 runs at grain 4 → 4+4+2 per scheduler, two schedulers.
        assert_eq!(units.len(), 6);
        let covered: usize = units.iter().map(|u| u.runs).sum();
        assert_eq!(covered, s.total_runs());
        // Unit ids are their partition positions; index bases tile the
        // matrix scheduler-major with seeds re-based per chunk.
        assert_eq!(units[2].index_base, 8);
        assert_eq!(units[2].runs, 2);
        assert_eq!(units[2].seed_start, 5 + 8);
        assert_eq!(units[3].index_base, 10);
        assert_eq!(units[3].scheduler, "random");
        assert_eq!(units[3].seed_start, 5);
        for (i, u) in units.iter().enumerate() {
            assert_eq!(u.id, i as u64);
        }
    }

    #[test]
    fn partition_is_deterministic() {
        assert_eq!(spec().partition(), spec().partition());
    }

    #[test]
    fn unit_round_trips_through_json() {
        for unit in spec().partition().into_iter().chain(fault_spec().partition()) {
            let doc = Json::parse(&unit.to_json()).unwrap();
            assert_eq!(WorkUnit::parse(&doc).unwrap(), unit);
        }
    }

    #[test]
    fn identity_distinguishes_campaign_shapes() {
        let a = spec();
        let mut b = spec();
        b.config.runs = 11;
        let mut c = spec();
        c.system[1].1 = "contrarian".into();
        assert_ne!(a.identity(), b.identity());
        assert_ne!(a.identity(), c.identity());
        assert_eq!(a.identity(), spec().identity());
    }

    #[test]
    fn unit_spec_ids_are_unique_per_unit() {
        let units = spec().partition();
        let mut ids: Vec<String> = units.iter().map(WorkUnit::spec_id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), units.len());
    }

    #[test]
    fn malformed_specs_are_structured_errors() {
        for bad in ["{}", "{\"system\": {}}", "not json"] {
            assert!(ServiceSpec::parse_str(bad).is_err(), "`{bad}`");
        }
    }
}
