//! Crash-tolerant multi-process campaign service.
//!
//! The single-process campaign runner ([`crate::campaign`]) already
//! survives panics, timeouts, and its own restarts (checkpoints); this
//! module promotes it into a *service* that survives anything short of
//! losing the disk: the (scheduler × seed-range) matrix is partitioned
//! into self-describing [`unit::WorkUnit`]s held in a persistent
//! crash-safe job queue ([`queue::JobQueue`]: append-only checksummed
//! journal plus atomic snapshot compaction), a coordinator
//! ([`coordinator::run_service`]) leases units to worker *processes*
//! over a length-prefixed JSON stdio protocol ([`proto`]) with
//! heartbeats, lease expiry, bounded retry-with-backoff on worker
//! death, and quarantine of poison units ([`lease::LeaseManager`]),
//! and a merge layer ([`merge`]) reassembles worker shards through the
//! *same* aggregation routine the single-process runner uses — so the
//! merged report is bit-for-bit independent of sharding, worker count,
//! crash/retry history, and merge order, by construction.
//!
//! Robustness is proven, not assumed: [`chaos::ChaosPlan`] lets the
//! service SIGKILL its own workers mid-unit and tear its own journal
//! writes, and the acceptance gate requires the merged report to stay
//! byte-identical to an unkilled single-process reference run.

pub mod chaos;
pub mod coordinator;
pub mod lease;
pub mod merge;
pub mod proto;
pub mod queue;
pub mod unit;

pub use chaos::ChaosPlan;
pub use coordinator::{run_service, ServiceOptions, ServiceOutcome, ServiceStats};
pub use lease::{LeaseEvent, LeaseManager, UnitState};
pub use merge::{merge_report, ShardResult};
pub use proto::{read_frame, write_frame, CoordMsg, WorkerMsg};
pub use queue::{JobQueue, JournalRecord, RecoveredState};
pub use unit::{ServiceSpec, WorkUnit};
