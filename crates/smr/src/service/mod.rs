//! Crash-tolerant multi-process campaign service.
//!
//! The single-process campaign runner ([`crate::campaign`]) already
//! survives panics, timeouts, and its own restarts (checkpoints); this
//! module promotes it into a *service* that survives anything short of
//! losing the disk: the (scheduler × seed-range) matrix is partitioned
//! into self-describing [`unit::WorkUnit`]s held in a persistent
//! crash-safe job queue ([`queue::JobQueue`]: append-only checksummed
//! journal plus atomic snapshot compaction), a coordinator
//! ([`coordinator::run_service`]) leases units to worker *processes*
//! over a length-prefixed JSON stdio protocol ([`proto`]) with
//! heartbeats, lease expiry, bounded retry-with-backoff on worker
//! death, and quarantine of poison units ([`lease::LeaseManager`]),
//! and a merge layer ([`merge`]) reassembles worker shards through the
//! *same* aggregation routine the single-process runner uses — so the
//! merged report is bit-for-bit independent of sharding, worker count,
//! crash/retry history, and merge order, by construction.
//!
//! The worker link is a pluggable [`transport::Transport`]: the
//! original spawned-process stdio framing, or TCP (`--listen` /
//! `--connect`) for cross-machine fleets — with a versioned handshake
//! that fails closed on protocol or spec mismatch, checksummed frames,
//! read/write deadlines, and session resumption so a worker that
//! reconnects within its lease window reclaims its unit without
//! burning an attempt. Fault-plan matrices ([`ServiceSpec::faults`])
//! partition across workers exactly like scheduler matrices, and each
//! run stores a per-claim [`summary::ServiceSummary`] beside the
//! journal.
//!
//! Robustness is proven, not assumed: [`chaos::ChaosPlan`] lets the
//! service SIGKILL its own workers mid-unit, tear its own journal
//! writes, and (through the deterministic [`chaos::NetChaos`] proxy)
//! drop, delay, duplicate, corrupt, and sever its own wire frames —
//! and the acceptance gate requires the merged report to stay
//! byte-identical to an unkilled single-process reference run.

pub mod chaos;
pub mod coordinator;
pub mod lease;
pub mod merge;
pub mod proto;
pub mod queue;
pub mod summary;
pub mod transport;
pub mod unit;

pub use chaos::{ChaosPlan, NetAction, NetChaos};
pub use coordinator::{
    run_service, run_service_with_transport, MergedReport, ServiceOptions,
    ServiceOutcome, ServiceStats,
};
pub use lease::{LeaseEvent, LeaseManager, UnitState};
pub use merge::{merge_fault_report, merge_report, ShardResult};
pub use proto::{
    encode_frame, read_frame, read_frame_raw, verify_frame, write_frame,
    CoordMsg, FrameError, WorkerMsg, PROTO_VERSION,
};
pub use queue::{JobQueue, JournalRecord, RecoveredState};
pub use summary::{build_summary, ClaimSummary, ServiceSummary};
pub use transport::{Remote, RemoteError, Transport};
pub use unit::{ServiceSpec, WorkUnit};
