//! Sharded configuration-fingerprint cache.
//!
//! Exhaustive exploration and campaign runs deduplicate configurations
//! by a stable 64-bit fingerprint of [`crate::system::System::config_key`].
//! A single `HashSet` behind one lock serialises every worker thread;
//! this cache splits the fingerprint space across `2^k` independently
//! locked shards so concurrent inserts from different shards never
//! contend.
//!
//! Determinism: the fingerprint function is a fixed FNV-1a over the
//! configuration key — no per-process or per-run hash randomisation —
//! so the set of fingerprints (and therefore every count derived from
//! it) is identical across runs and thread counts. Set membership is
//! order-independent, which is what makes the parallel explorer's
//! `configs_visited` reproducible bit-for-bit.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Stable 64-bit FNV-1a fingerprint of a configuration key.
///
/// Deliberately not `std::hash::DefaultHasher`, whose per-instance
/// randomisation would make fingerprints differ between runs.
pub fn fingerprint(key: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for byte in key.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A concurrent set of configuration fingerprints, sharded by hash.
///
/// # Examples
///
/// ```
/// use rsim_smr::fingerprint::FingerprintCache;
///
/// let cache = FingerprintCache::new(8);
/// assert!(cache.insert("config-a"));
/// assert!(!cache.insert("config-a"));
/// assert!(cache.contains("config-a"));
/// assert_eq!(cache.len(), 1);
/// ```
#[derive(Debug)]
pub struct FingerprintCache {
    shards: Box<[Mutex<HashSet<u64>>]>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: u64,
    /// Cached total size, maintained on successful inserts so `len()`
    /// does not take every shard lock.
    size: AtomicUsize,
}

impl FingerprintCache {
    /// Creates a cache with at least `shards` shards (rounded up to a
    /// power of two, minimum 1).
    pub fn new(shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        FingerprintCache {
            shards: (0..count).map(|_| Mutex::new(HashSet::new())).collect(),
            mask: count as u64 - 1,
            size: AtomicUsize::new(0),
        }
    }

    /// A cache sized for `threads` worker threads (4 shards per thread
    /// keeps the collision probability per lock acquisition low).
    pub fn for_threads(threads: usize) -> Self {
        FingerprintCache::new(threads.max(1) * 4)
    }

    fn shard(&self, fp: u64) -> &Mutex<HashSet<u64>> {
        // Shard on the high bits: FNV-1a mixes them well, and the low
        // bits then still select hash buckets inside the shard.
        &self.shards[((fp >> 32) & self.mask) as usize]
    }

    /// Inserts the configuration, returning `true` if it was new.
    pub fn insert(&self, key: &str) -> bool {
        self.insert_fingerprint(fingerprint(key))
    }

    /// Inserts a precomputed fingerprint, returning `true` if new.
    pub fn insert_fingerprint(&self, fp: u64) -> bool {
        let new = self.shard(fp).lock().expect("shard lock").insert(fp);
        if new {
            self.size.fetch_add(1, Ordering::Relaxed);
        }
        new
    }

    /// Is the configuration already present?
    pub fn contains(&self, key: &str) -> bool {
        self.contains_fingerprint(fingerprint(key))
    }

    /// Is the fingerprint already present?
    pub fn contains_fingerprint(&self, fp: u64) -> bool {
        self.shard(fp).lock().expect("shard lock").contains(&fp)
    }

    /// Number of distinct configurations inserted.
    pub fn len(&self) -> usize {
        self.size.load(Ordering::Relaxed)
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        assert_eq!(fingerprint("abc"), fingerprint("abc"));
        assert_ne!(fingerprint("abc"), fingerprint("abd"));
        // FNV-1a of the empty string is the offset basis.
        assert_eq!(fingerprint(""), FNV_OFFSET);
    }

    #[test]
    fn insert_deduplicates() {
        let cache = FingerprintCache::new(4);
        assert!(cache.insert("x"));
        assert!(!cache.insert("x"));
        assert!(cache.insert("y"));
        assert_eq!(cache.len(), 2);
        assert!(!cache.is_empty());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(FingerprintCache::new(0).shard_count(), 1);
        assert_eq!(FingerprintCache::new(3).shard_count(), 4);
        assert_eq!(FingerprintCache::new(8).shard_count(), 8);
        assert_eq!(FingerprintCache::for_threads(3).shard_count(), 16);
    }

    #[test]
    fn concurrent_inserts_count_once_each() {
        let cache = FingerprintCache::for_threads(4);
        let keys: Vec<String> = (0..2000).map(|i| format!("cfg-{i}")).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for key in &keys {
                        cache.insert(key);
                    }
                });
            }
        });
        assert_eq!(cache.len(), keys.len());
        assert!(keys.iter().all(|k| cache.contains(k)));
    }
}
