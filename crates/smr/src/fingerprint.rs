//! Sharded configuration-fingerprint cache.
//!
//! Exhaustive exploration and campaign runs deduplicate configurations
//! by a stable 64-bit fingerprint of [`crate::system::System::config_key`].
//! A single `HashSet` behind one lock serialises every worker thread;
//! this cache splits the fingerprint space across `2^k` independently
//! locked shards so concurrent inserts from different shards never
//! contend.
//!
//! Determinism: the fingerprint function is a fixed FNV-1a over the
//! configuration key — no per-process or per-run hash randomisation —
//! so the set of fingerprints (and therefore every count derived from
//! it) is identical across runs and thread counts. Set membership is
//! order-independent, which is what makes the parallel explorer's
//! `configs_visited` reproducible bit-for-bit.
//!
//! # Memory budget
//!
//! An unbounded cache can exhaust memory on long campaigns. A cache
//! built with [`FingerprintCache::bounded`] enforces a per-shard entry
//! cap: once a shard is full, the oldest fingerprint in that shard is
//! evicted (bounded-LRU sharding). Eviction trades exactness for a
//! memory ceiling — an evicted configuration seen again counts twice —
//! so the first eviction latches [`FingerprintCache::truncated`], and
//! callers must surface that notice instead of silently reporting an
//! approximate `len()` as exact.

use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Stable 64-bit FNV-1a fingerprint of a configuration key.
///
/// Deliberately not `std::hash::DefaultHasher`, whose per-instance
/// randomisation would make fingerprints differ between runs.
pub fn fingerprint(key: &str) -> u64 {
    let mut h = FnvStream::new();
    h.write_bytes(key.as_bytes());
    h.finish()
}

/// A streaming FNV-1a hasher that doubles as a [`fmt::Write`] sink.
///
/// `write!(stream, "{value:?}")` feeds the `Debug` rendering of a value
/// through the hash byte-for-byte without materialising a `String`, so
/// a fingerprint streamed through `FnvStream` is bit-identical to
/// [`fingerprint`] of the equivalent formatted key — that identity is
/// what lets [`crate::system::System::config_fingerprint`] replace
/// `fingerprint(&config_key())` with zero allocation.
#[derive(Clone, Debug)]
pub struct FnvStream {
    state: u64,
}

impl FnvStream {
    /// A fresh hasher at the FNV-1a offset basis.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        FnvStream { state: FNV_OFFSET }
    }

    /// Feeds raw bytes through the hash.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for byte in bytes {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.state = h;
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl fmt::Write for FnvStream {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.write_bytes(s.as_bytes());
        Ok(())
    }
}

/// Structural configuration hashing: feed the identity-relevant state of
/// a value into an [`FnvStream`].
///
/// The canonical encoding is the value's `Debug` rendering (streamed,
/// never allocated), which keeps structural fingerprints bit-identical
/// to the legacy string-keyed `fingerprint(&config_key())` scheme —
/// checked by the golden regression tests — while the explorer hot path
/// pays no `String` allocation per visited configuration.
pub trait ConfigHash {
    /// Streams this value's configuration identity into `h`.
    fn hash_config(&self, h: &mut FnvStream);

    /// The fingerprint of this value alone.
    fn config_hash(&self) -> u64 {
        let mut h = FnvStream::new();
        self.hash_config(&mut h);
        h.finish()
    }
}

/// One shard: the membership set plus insertion order for eviction.
#[derive(Debug, Default)]
struct Shard {
    set: HashSet<u64>,
    /// Insertion order; only maintained when the cache is bounded.
    order: VecDeque<u64>,
}

/// A concurrent set of configuration fingerprints, sharded by hash.
///
/// # Examples
///
/// ```
/// use rsim_smr::fingerprint::FingerprintCache;
///
/// let cache = FingerprintCache::new(8);
/// assert!(cache.insert("config-a"));
/// assert!(!cache.insert("config-a"));
/// assert!(cache.contains("config-a"));
/// assert_eq!(cache.len(), 1);
/// ```
#[derive(Debug)]
pub struct FingerprintCache {
    shards: Box<[Mutex<Shard>]>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: u64,
    /// Cached total size, maintained on successful inserts so `len()`
    /// does not take every shard lock.
    size: AtomicUsize,
    /// Per-shard entry cap; `usize::MAX` means unbounded.
    shard_cap: usize,
    /// Latched on the first eviction: `len()` is approximate from then
    /// on and callers must report the truncation.
    truncated: AtomicBool,
}

impl FingerprintCache {
    /// Creates an unbounded cache with at least `shards` shards
    /// (rounded up to a power of two, minimum 1).
    pub fn new(shards: usize) -> Self {
        FingerprintCache::with_cap(shards, usize::MAX)
    }

    /// Creates a cache with a total-entry memory budget. The budget is
    /// split evenly across shards (at least one entry per shard); a
    /// full shard evicts its oldest fingerprint and latches the
    /// [`FingerprintCache::truncated`] notice.
    pub fn bounded(shards: usize, max_entries: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        FingerprintCache::with_cap(count, max_entries.div_ceil(count).max(1))
    }

    fn with_cap(shards: usize, shard_cap: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        FingerprintCache {
            shards: (0..count).map(|_| Mutex::new(Shard::default())).collect(),
            mask: count as u64 - 1,
            size: AtomicUsize::new(0),
            shard_cap,
            truncated: AtomicBool::new(false),
        }
    }

    /// A cache sized for `threads` worker threads (4 shards per thread
    /// keeps the collision probability per lock acquisition low).
    pub fn for_threads(threads: usize) -> Self {
        FingerprintCache::new(threads.max(1) * 4)
    }

    /// A cache sized for `threads` workers with an optional memory
    /// budget (`None` = unbounded).
    pub fn for_threads_bounded(threads: usize, max_entries: Option<usize>) -> Self {
        match max_entries {
            Some(budget) => FingerprintCache::bounded(threads.max(1) * 4, budget),
            None => FingerprintCache::for_threads(threads),
        }
    }

    fn shard(&self, fp: u64) -> &Mutex<Shard> {
        // Shard on the high bits: FNV-1a mixes them well, and the low
        // bits then still select hash buckets inside the shard.
        &self.shards[((fp >> 32) & self.mask) as usize]
    }

    /// Inserts the configuration, returning `true` if it was new.
    pub fn insert(&self, key: &str) -> bool {
        self.insert_fingerprint(fingerprint(key))
    }

    /// Inserts a precomputed fingerprint, returning `true` if new.
    pub fn insert_fingerprint(&self, fp: u64) -> bool {
        let mut shard = self.shard(fp).lock().expect("shard lock");
        let new = shard.set.insert(fp);
        if new {
            self.size.fetch_add(1, Ordering::Relaxed);
            if self.shard_cap != usize::MAX {
                shard.order.push_back(fp);
                if shard.order.len() > self.shard_cap {
                    if let Some(oldest) = shard.order.pop_front() {
                        shard.set.remove(&oldest);
                        self.truncated.store(true, Ordering::Relaxed);
                    }
                }
            }
        }
        new
    }

    /// Is the configuration already present?
    pub fn contains(&self, key: &str) -> bool {
        self.contains_fingerprint(fingerprint(key))
    }

    /// Is the fingerprint already present?
    pub fn contains_fingerprint(&self, fp: u64) -> bool {
        self.shard(fp).lock().expect("shard lock").set.contains(&fp)
    }

    /// Number of distinct configurations inserted. Exact until the
    /// cache [`FingerprintCache::truncated`]; an over-count after (an
    /// evicted configuration seen again is counted twice).
    pub fn len(&self) -> usize {
        self.size.load(Ordering::Relaxed)
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Has the memory budget forced an eviction? When `true`,
    /// [`FingerprintCache::len`] is approximate and any report derived
    /// from it must carry a truncation notice.
    pub fn truncated(&self) -> bool {
        self.truncated.load(Ordering::Relaxed)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The currently held fingerprints, sorted (deterministic). Used by
    /// campaign checkpoints so a resumed run reconstructs the exact
    /// dedup state.
    pub fn snapshot(&self) -> Vec<u64> {
        let mut all: Vec<u64> = Vec::with_capacity(self.len());
        for shard in self.shards.iter() {
            all.extend(shard.lock().expect("shard lock").set.iter().copied());
        }
        all.sort_unstable();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        assert_eq!(fingerprint("abc"), fingerprint("abc"));
        assert_ne!(fingerprint("abc"), fingerprint("abd"));
        // FNV-1a of the empty string is the offset basis.
        assert_eq!(fingerprint(""), FNV_OFFSET);
    }

    #[test]
    fn streamed_hash_matches_string_fingerprint() {
        use std::fmt::Write;
        // Split writes hash identically to one concatenated key.
        let mut h = FnvStream::new();
        h.write_bytes(b"ab");
        h.write_bytes(b"");
        h.write_bytes(b"c;xyz");
        assert_eq!(h.finish(), fingerprint("abc;xyz"));
        // Formatted writes stream the same bytes fmt would produce.
        let mut h = FnvStream::new();
        write!(h, "{:?};{}", vec![1, 2], 7).unwrap();
        assert_eq!(h.finish(), fingerprint("[1, 2];7"));
        assert_eq!(FnvStream::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn insert_deduplicates() {
        let cache = FingerprintCache::new(4);
        assert!(cache.insert("x"));
        assert!(!cache.insert("x"));
        assert!(cache.insert("y"));
        assert_eq!(cache.len(), 2);
        assert!(!cache.is_empty());
        assert!(!cache.truncated());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(FingerprintCache::new(0).shard_count(), 1);
        assert_eq!(FingerprintCache::new(3).shard_count(), 4);
        assert_eq!(FingerprintCache::new(8).shard_count(), 8);
        assert_eq!(FingerprintCache::for_threads(3).shard_count(), 16);
    }

    #[test]
    fn concurrent_inserts_count_once_each() {
        let cache = FingerprintCache::for_threads(4);
        let keys: Vec<String> = (0..2000).map(|i| format!("cfg-{i}")).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for key in &keys {
                        cache.insert(key);
                    }
                });
            }
        });
        assert_eq!(cache.len(), keys.len());
        assert!(keys.iter().all(|k| cache.contains(k)));
    }

    #[test]
    fn bounded_cache_evicts_and_latches_truncation() {
        let cache = FingerprintCache::bounded(1, 4);
        assert_eq!(cache.shard_count(), 1);
        for i in 0..4u64 {
            assert!(cache.insert_fingerprint(i));
        }
        assert!(!cache.truncated());
        // Fifth insert evicts the oldest (0) and latches the notice.
        assert!(cache.insert_fingerprint(100));
        assert!(cache.truncated());
        assert!(!cache.contains_fingerprint(0));
        assert!(cache.contains_fingerprint(100));
        // The evicted fingerprint re-inserts as "new": len over-counts,
        // which is exactly why truncated() must be reported.
        assert!(cache.insert_fingerprint(0));
        assert_eq!(cache.len(), 6);
    }

    #[test]
    fn bounded_cache_budget_is_split_across_shards() {
        let cache = FingerprintCache::bounded(4, 8);
        assert_eq!(cache.shard_count(), 4);
        // 2 entries per shard; the membership set never exceeds the
        // budget no matter how many inserts arrive.
        for i in 0..10_000u64 {
            cache.insert_fingerprint(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        assert!(cache.truncated());
        assert!(cache.snapshot().len() <= 8);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let cache = FingerprintCache::new(4);
        for fp in [9u64, 3, 7, 1] {
            cache.insert_fingerprint(fp);
        }
        assert_eq!(cache.snapshot(), vec![1, 3, 7, 9]);
    }

    #[test]
    fn unbounded_cache_never_truncates() {
        let cache = FingerprintCache::for_threads_bounded(2, None);
        for i in 0..5000u64 {
            cache.insert_fingerprint(i);
        }
        assert!(!cache.truncated());
        assert_eq!(cache.len(), 5000);
    }
}
