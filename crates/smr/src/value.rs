//! Values stored in base objects and exchanged with processes.
//!
//! The paper's model is untyped: registers and snapshot components hold
//! "values". We model this with a small dynamic [`Value`] enum that is
//! totally ordered (several protocols break ties by value order) and
//! hashable (the exhaustive explorer fingerprints configurations).
//!
//! Approximate agreement needs exact real arithmetic on midpoints, so
//! [`Value::Dyadic`] stores dyadic rationals `num / 2^exp` exactly.

use std::fmt;

/// A dyadic rational `num / 2^exp`, the value domain of the approximate
/// agreement protocols (midpoint computations stay exact).
///
/// The representation is kept normalized: `exp == 0` or `num` is odd.
///
/// # Examples
///
/// ```
/// use rsim_smr::value::Dyadic;
///
/// let half = Dyadic::new(1, 1);
/// let quarter = Dyadic::new(1, 2);
/// assert_eq!(half.midpoint(quarter), Dyadic::new(3, 3));
/// assert!(quarter < half);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Dyadic {
    num: i64,
    exp: u32,
}

impl Dyadic {
    /// Creates `num / 2^exp`, normalizing the representation.
    ///
    /// # Panics
    ///
    /// Panics if `exp > 62` after normalization (values this fine are
    /// far below any ε used in the experiments).
    pub fn new(num: i64, exp: u32) -> Self {
        let mut d = Dyadic { num, exp };
        d.normalize();
        assert!(d.exp <= 62, "dyadic denominator overflow: 2^{}", d.exp);
        d
    }

    /// The integer `n` as a dyadic rational.
    pub fn integer(n: i64) -> Self {
        Dyadic { num: n, exp: 0 }
    }

    /// Zero.
    pub fn zero() -> Self {
        Dyadic::integer(0)
    }

    /// One.
    pub fn one() -> Self {
        Dyadic::integer(1)
    }

    /// `1 / 2^exp`, the canonical ε for approximate agreement sweeps.
    pub fn two_to_minus(exp: u32) -> Self {
        Dyadic::new(1, exp)
    }

    /// Numerator of the normalized representation.
    pub fn num(&self) -> i64 {
        self.num
    }

    /// Exponent of the normalized representation (denominator is `2^exp`).
    pub fn exp(&self) -> u32 {
        self.exp
    }

    fn normalize(&mut self) {
        while self.exp > 0 && self.num % 2 == 0 {
            self.num /= 2;
            self.exp -= 1;
        }
    }

    /// Exact midpoint `(self + other) / 2`.
    pub fn midpoint(self, other: Dyadic) -> Dyadic {
        let e = self.exp.max(other.exp);
        let a = self.num << (e - self.exp);
        let b = other.num << (e - other.exp);
        Dyadic::new(a + b, e + 1)
    }

    /// Absolute value.
    pub fn abs(self) -> Dyadic {
        Dyadic { num: self.num.abs(), exp: self.exp }
    }

    /// Approximate `f64` rendering (for reporting only).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / (1u64 << self.exp) as f64
    }

    /// Compares two dyadics exactly.
    fn cmp_exact(&self, other: &Dyadic) -> std::cmp::Ordering {
        let e = self.exp.max(other.exp);
        let a = (self.num as i128) << (e - self.exp);
        let b = (other.num as i128) << (e - other.exp);
        a.cmp(&b)
    }
}

impl std::ops::Add for Dyadic {
    type Output = Dyadic;

    /// Exact sum.
    fn add(self, other: Dyadic) -> Dyadic {
        let e = self.exp.max(other.exp);
        let a = self.num << (e - self.exp);
        let b = other.num << (e - other.exp);
        Dyadic::new(a + b, e)
    }
}

impl std::ops::Sub for Dyadic {
    type Output = Dyadic;

    /// Exact difference.
    fn sub(self, other: Dyadic) -> Dyadic {
        let e = self.exp.max(other.exp);
        let a = self.num << (e - self.exp);
        let b = other.num << (e - other.exp);
        Dyadic::new(a - b, e)
    }
}

impl PartialOrd for Dyadic {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dyadic {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cmp_exact(other)
    }
}

impl fmt::Debug for Dyadic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/2^{}", self.num, self.exp)
    }
}

impl fmt::Display for Dyadic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

/// A dynamically typed value, the common currency of all base objects.
///
/// `Value::Nil` plays the role of the paper's ⊥ (the initial register
/// value). The ordering is total: `Nil < Bool < Int < Dyadic < Pair <
/// Tuple`, with lexicographic ordering within each variant, so protocols
/// may break ties deterministically by comparing values.
///
/// # Examples
///
/// ```
/// use rsim_smr::value::Value;
///
/// let v = Value::pair(Value::Int(3), Value::Int(7));
/// assert!(Value::Nil < v);
/// assert_eq!(v.as_pair().unwrap().0, &Value::Int(3));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Value {
    /// The undefined value ⊥; every register starts as `Nil`.
    #[default]
    Nil,
    /// A boolean flag.
    Bool(bool),
    /// A machine integer (inputs, rounds, timestamps).
    Int(i64),
    /// An exact dyadic rational (approximate agreement).
    Dyadic(Dyadic),
    /// An ordered pair, e.g. `(value, timestamp)`.
    Pair(Box<Value>, Box<Value>),
    /// An arbitrary-width tuple.
    Tuple(Vec<Value>),
}

impl Value {
    /// Convenience constructor for a pair.
    pub fn pair(a: Value, b: Value) -> Value {
        Value::Pair(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for a triple.
    pub fn triple(a: Value, b: Value, c: Value) -> Value {
        Value::Tuple(vec![a, b, c])
    }

    /// Is this the undefined value ⊥?
    pub fn is_nil(&self) -> bool {
        matches!(self, Value::Nil)
    }

    /// Views the value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Views the value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Views the value as a dyadic rational, if it is one.
    pub fn as_dyadic(&self) -> Option<Dyadic> {
        match self {
            Value::Dyadic(d) => Some(*d),
            _ => None,
        }
    }

    /// Views the value as a pair, if it is one.
    pub fn as_pair(&self) -> Option<(&Value, &Value)> {
        match self {
            Value::Pair(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// Views the value as a tuple slice, if it is one.
    pub fn as_tuple(&self) -> Option<&[Value]> {
        match self {
            Value::Tuple(t) => Some(t),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<Dyadic> for Value {
    fn from(d: Dyadic) -> Value {
        Value::Dyadic(d)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => write!(f, "⊥"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Dyadic(d) => write!(f, "{d:?}"),
            Value::Pair(a, b) => write!(f, "({a:?},{b:?})"),
            Value::Tuple(t) => {
                write!(f, "(")?;
                for (i, v) in t.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v:?}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl crate::fingerprint::ConfigHash for Value {
    fn hash_config(&self, h: &mut crate::fingerprint::FnvStream) {
        use fmt::Write;
        let _ = write!(h, "{self:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dyadic_normalizes() {
        assert_eq!(Dyadic::new(4, 2), Dyadic::integer(1));
        assert_eq!(Dyadic::new(6, 1), Dyadic::integer(3));
        assert_eq!(Dyadic::new(3, 2).num(), 3);
        assert_eq!(Dyadic::new(3, 2).exp(), 2);
    }

    #[test]
    fn dyadic_midpoint_exact() {
        let a = Dyadic::zero();
        let b = Dyadic::one();
        let m = a.midpoint(b);
        assert_eq!(m, Dyadic::new(1, 1));
        let m2 = m.midpoint(b);
        assert_eq!(m2, Dyadic::new(3, 2));
    }

    #[test]
    fn dyadic_arithmetic() {
        let a = Dyadic::new(3, 2); // 3/4
        let b = Dyadic::new(1, 1); // 1/2
        assert_eq!(a + b, Dyadic::new(5, 2));
        assert_eq!(a - b, Dyadic::new(1, 2));
        assert_eq!(b - a, Dyadic::new(-1, 2));
        assert_eq!((b - a).abs(), Dyadic::new(1, 2));
    }

    #[test]
    fn dyadic_ordering() {
        assert!(Dyadic::new(1, 2) < Dyadic::new(1, 1));
        assert!(Dyadic::zero() < Dyadic::two_to_minus(20));
        assert!(Dyadic::integer(-1) < Dyadic::zero());
    }

    #[test]
    fn value_ordering_is_total_across_variants() {
        let vals = [Value::Nil,
            Value::Bool(false),
            Value::Int(0),
            Value::Dyadic(Dyadic::zero()),
            Value::pair(Value::Nil, Value::Nil),
            Value::Tuple(vec![])];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{:?} !< {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Nil.as_int(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        let p = Value::pair(Value::Int(1), Value::Int(2));
        let (a, b) = p.as_pair().unwrap();
        assert_eq!((a.as_int(), b.as_int()), (Some(1), Some(2)));
        assert!(Value::triple(Value::Nil, Value::Nil, Value::Nil)
            .as_tuple()
            .is_some());
    }

    #[test]
    fn nil_is_default() {
        assert_eq!(Value::default(), Value::Nil);
        assert!(Value::Nil.is_nil());
    }
}
