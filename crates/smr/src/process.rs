//! Processes: deterministic state machines driven by the scheduler.
//!
//! A process is always *poised* either to perform a base-object
//! operation or to output a value and terminate (paper §2). The runtime
//! asks a process what it is poised to do ([`Process::poised`]), applies
//! the operation to the object, and feeds the response back
//! ([`Process::receive`]).
//!
//! Processes must be cloneable behind `dyn` ([`Process::boxed_clone`])
//! because the revisionist simulation saves, restores, and *locally
//! simulates* process states, and the exhaustive explorer forks
//! configurations.
//!
//! [`SnapshotProcess`] adapts a [`SnapshotProtocol`] — the restricted
//! protocol shape of Assumption 1 in the paper (alternate `scan` and
//! `update` on one snapshot object) — into a full [`Process`].

use crate::object::{ObjectId, Operation, Response};
use crate::value::Value;
use std::fmt;

/// Identifies a process within a system.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcessId(pub usize);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// What a process will do if allocated a step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Poised {
    /// The process's next step is this base-object operation.
    Step(Operation),
    /// The process has output this value and terminated.
    Output(Value),
}

impl Poised {
    /// The operation, if the process has not terminated.
    pub fn operation(&self) -> Option<&Operation> {
        match self {
            Poised::Step(op) => Some(op),
            Poised::Output(_) => None,
        }
    }

    /// The output value, if the process has terminated.
    pub fn output(&self) -> Option<&Value> {
        match self {
            Poised::Step(_) => None,
            Poised::Output(v) => Some(v),
        }
    }
}

/// A deterministic process state machine.
///
/// `Send + Sync` is required so configurations
/// ([`crate::system::System`]) can migrate between — and frontier
/// slices be shared by — worker threads of the parallel explorer and
/// the campaign runner; process state is plain data (no interior
/// mutability), so in practice every implementation satisfies both
/// automatically.
pub trait Process: fmt::Debug + Send + Sync {
    /// What the process is poised to do in its current state.
    fn poised(&self) -> Poised;

    /// Delivers the response of the operation the process was poised to
    /// perform, advancing its state.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called on a terminated process or
    /// with a response of the wrong shape; the runtime never does either.
    fn receive(&mut self, resp: Response);

    /// Clones the process state behind `dyn`.
    fn boxed_clone(&self) -> Box<dyn Process>;

    /// A stable textual fingerprint of the process state, used by the
    /// exhaustive explorer to deduplicate configurations. The default is
    /// the `Debug` rendering, which is adequate as long as `Debug` output
    /// captures the full state (derived `Debug` does).
    fn state_key(&self) -> String {
        format!("{self:?}")
    }

    /// Streams exactly the bytes of [`Process::state_key`] into `out`.
    /// The default delegates to `state_key` (allocating but always
    /// consistent); hot-path process types override this to stream the
    /// same bytes with zero allocation. Overrides must write byte-for-
    /// byte what `state_key` returns, or structural configuration
    /// fingerprints would disagree with the legacy string-keyed scheme.
    fn write_state_key(&self, out: &mut dyn fmt::Write) {
        let _ = out.write_str(&self.state_key());
    }
}

impl crate::fingerprint::ConfigHash for Poised {
    fn hash_config(&self, h: &mut crate::fingerprint::FnvStream) {
        use fmt::Write;
        let _ = write!(h, "{self:?}");
    }
}

impl Clone for Box<dyn Process> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// The outcome of a protocol's scan in the Assumption 1 shape: after
/// every scan a process is poised either to update some component or to
/// output a value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProtocolStep {
    /// Perform `update(component, value)` next.
    Update(usize, Value),
    /// Output `value` and terminate.
    Output(Value),
}

/// A protocol in the shape of Assumption 1: the process alternately
/// performs `scan` and `update` on a single m-component snapshot object,
/// until a scan allows it to output.
///
/// Implementations carry the full local state of the simulated process;
/// [`SnapshotProtocol::on_scan`] consumes a view and decides the next
/// update or the output. The trait requires `Clone` because the
/// revisionist simulation snapshots and rolls back protocol states when
/// revising the past.
pub trait SnapshotProtocol: Clone + fmt::Debug + Send + Sync {
    /// Handles the result of a scan: returns the update the process is
    /// now poised to perform, or its output.
    fn on_scan(&mut self, view: &[Value]) -> ProtocolStep;

    /// The number of snapshot components the protocol uses.
    fn components(&self) -> usize;
}

/// Phase of a [`SnapshotProcess`]: scan → update → scan → … → output.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Phase {
    /// Poised to scan.
    Scan,
    /// Poised to update `(component, value)`.
    Update(usize, Value),
    /// Terminated with an output.
    Done(Value),
}

/// Adapter turning a [`SnapshotProtocol`] into a [`Process`] operating
/// on the snapshot object `object`.
///
/// # Examples
///
/// ```
/// use rsim_smr::object::ObjectId;
/// use rsim_smr::process::{Poised, Process, ProtocolStep, SnapshotProcess, SnapshotProtocol};
/// use rsim_smr::value::Value;
///
/// /// Writes its input once, then outputs whatever it scanned.
/// #[derive(Clone, Debug)]
/// struct WriteOnce { input: i64, wrote: bool }
///
/// impl SnapshotProtocol for WriteOnce {
///     fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
///         if self.wrote {
///             ProtocolStep::Output(view[0].clone())
///         } else {
///             self.wrote = true;
///             ProtocolStep::Update(0, Value::Int(self.input))
///         }
///     }
///     fn components(&self) -> usize { 1 }
/// }
///
/// let p = SnapshotProcess::new(WriteOnce { input: 3, wrote: false }, ObjectId(0));
/// assert!(matches!(p.poised(), Poised::Step(_)));
/// ```
#[derive(Clone, Debug)]
pub struct SnapshotProcess<P: SnapshotProtocol> {
    protocol: P,
    object: ObjectId,
    phase: Phase,
}

impl<P: SnapshotProtocol> SnapshotProcess<P> {
    /// Wraps `protocol`, operating on snapshot object `object`. The
    /// process is initially poised to scan (Assumption 1 lets every
    /// process start with a scan).
    pub fn new(protocol: P, object: ObjectId) -> Self {
        SnapshotProcess { protocol, object, phase: Phase::Scan }
    }

    /// The wrapped protocol state.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Has the process terminated?
    pub fn is_done(&self) -> bool {
        matches!(self.phase, Phase::Done(_))
    }
}

impl<P: SnapshotProtocol + 'static> Process for SnapshotProcess<P> {
    fn poised(&self) -> Poised {
        match &self.phase {
            Phase::Scan => Poised::Step(Operation::Scan { obj: self.object }),
            Phase::Update(c, v) => Poised::Step(Operation::Update {
                obj: self.object,
                component: *c,
                value: v.clone(),
            }),
            Phase::Done(v) => Poised::Output(v.clone()),
        }
    }

    fn receive(&mut self, resp: Response) {
        match (&self.phase, resp) {
            (Phase::Scan, Response::View(view)) => {
                self.phase = match self.protocol.on_scan(&view) {
                    ProtocolStep::Update(c, v) => Phase::Update(c, v),
                    ProtocolStep::Output(v) => Phase::Done(v),
                };
            }
            (Phase::Update(..), Response::Ack) => {
                self.phase = Phase::Scan;
            }
            (phase, resp) => panic!(
                "SnapshotProcess protocol violation: phase {phase:?} got response {resp:?}"
            ),
        }
    }

    fn boxed_clone(&self) -> Box<dyn Process> {
        Box::new(self.clone())
    }

    // Zero-allocation stream of the default `state_key` (the derived
    // `Debug` rendering).
    fn write_state_key(&self, out: &mut dyn fmt::Write) {
        let _ = write!(out, "{self:?}");
    }
}

/// Drives a [`SnapshotProtocol`] *locally*: scans return the contents of
/// a local copy of the snapshot and updates mutate it. This is exactly
/// what a covering simulator does when it revises the past (paper §4.1:
/// "locally simulate a solo execution of p assuming the contents of M
/// are V").
///
/// Returns the sequence of `(component, value)` updates performed, and
/// the final [`ProtocolStep`] that stopped the run: an update outside
/// `allowed` components, or an output. `None` is returned if `budget`
/// scans elapse first.
///
/// The local snapshot `contents` is mutated in place, so callers can
/// resume a local run.
pub fn run_solo_locally<P: SnapshotProtocol>(
    protocol: &mut P,
    contents: &mut [Value],
    allowed: &dyn Fn(usize) -> bool,
    budget: usize,
) -> Option<(Vec<(usize, Value)>, ProtocolStep)> {
    let mut hidden = Vec::new();
    for _ in 0..budget {
        match protocol.on_scan(contents) {
            ProtocolStep::Update(c, v) => {
                if allowed(c) {
                    contents[c] = v.clone();
                    hidden.push((c, v));
                } else {
                    return Some((hidden, ProtocolStep::Update(c, v)));
                }
            }
            ProtocolStep::Output(v) => return Some((hidden, ProtocolStep::Output(v))),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Countdown {
        remaining: i64,
    }

    impl SnapshotProtocol for Countdown {
        fn on_scan(&mut self, _view: &[Value]) -> ProtocolStep {
            if self.remaining == 0 {
                ProtocolStep::Output(Value::Int(0))
            } else {
                self.remaining -= 1;
                ProtocolStep::Update(0, Value::Int(self.remaining))
            }
        }
        fn components(&self) -> usize {
            1
        }
    }

    #[test]
    fn snapshot_process_alternates_scan_update() {
        let mut p = SnapshotProcess::new(Countdown { remaining: 2 }, ObjectId(0));
        // scan
        assert!(matches!(
            p.poised(),
            Poised::Step(Operation::Scan { .. })
        ));
        p.receive(Response::View(vec![Value::Nil]));
        // update
        assert!(matches!(
            p.poised(),
            Poised::Step(Operation::Update { component: 0, .. })
        ));
        p.receive(Response::Ack);
        // scan again
        assert!(matches!(p.poised(), Poised::Step(Operation::Scan { .. })));
        p.receive(Response::View(vec![Value::Int(1)]));
        p.receive(Response::Ack);
        p.receive(Response::View(vec![Value::Int(0)]));
        assert_eq!(p.poised(), Poised::Output(Value::Int(0)));
        assert!(p.is_done());
    }

    #[test]
    fn boxed_clone_preserves_state() {
        let mut p = SnapshotProcess::new(Countdown { remaining: 1 }, ObjectId(0));
        p.receive(Response::View(vec![Value::Nil]));
        let q = p.boxed_clone();
        assert_eq!(p.poised(), q.poised());
    }

    #[test]
    fn run_solo_locally_stops_at_disallowed_component() {
        #[derive(Clone, Debug)]
        struct TwoComponents {
            step: usize,
        }
        impl SnapshotProtocol for TwoComponents {
            fn on_scan(&mut self, _view: &[Value]) -> ProtocolStep {
                self.step += 1;
                match self.step {
                    1 => ProtocolStep::Update(0, Value::Int(1)),
                    2 => ProtocolStep::Update(1, Value::Int(2)),
                    _ => ProtocolStep::Output(Value::Int(9)),
                }
            }
            fn components(&self) -> usize {
                2
            }
        }

        let mut p = TwoComponents { step: 0 };
        let mut contents = vec![Value::Nil, Value::Nil];
        let (hidden, stop) =
            run_solo_locally(&mut p, &mut contents, &|c| c == 0, 100).unwrap();
        assert_eq!(hidden, vec![(0, Value::Int(1))]);
        assert_eq!(stop, ProtocolStep::Update(1, Value::Int(2)));
        // The local snapshot reflects only the allowed (hidden) update.
        assert_eq!(contents, vec![Value::Int(1), Value::Nil]);
    }

    #[test]
    fn run_solo_locally_returns_none_on_budget() {
        #[derive(Clone, Debug)]
        struct Spinner;
        impl SnapshotProtocol for Spinner {
            fn on_scan(&mut self, _view: &[Value]) -> ProtocolStep {
                ProtocolStep::Update(0, Value::Int(1))
            }
            fn components(&self) -> usize {
                1
            }
        }
        let mut p = Spinner;
        let mut contents = vec![Value::Nil];
        assert!(run_solo_locally(&mut p, &mut contents, &|_| true, 10).is_none());
    }

    #[test]
    fn poised_accessors() {
        let step = Poised::Step(Operation::Scan { obj: ObjectId(0) });
        assert!(step.operation().is_some());
        assert!(step.output().is_none());
        let done = Poised::Output(Value::Int(1));
        assert!(done.operation().is_none());
        assert_eq!(done.output(), Some(&Value::Int(1)));
    }
}
