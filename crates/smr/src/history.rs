//! Operation histories: invocation/response records for implemented
//! (non-atomic) objects.
//!
//! An *implementation* of an object (paper §2) executes each high-level
//! operation as a sequence of base-object steps. Correctness is
//! linearizability: every history must admit linearization points within
//! each operation's execution interval. [`History`] records the
//! intervals; [`crate::linearizability`] searches for a witness.

use crate::object::{Operation, Response};

/// Identifier of a high-level operation within a history.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpId(pub usize);

/// One high-level operation's interval in a history.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OpRecord {
    /// Operation identifier (dense, in invocation order).
    pub id: OpId,
    /// The invoking process.
    pub pid: usize,
    /// The sequential-level operation (what was invoked).
    pub op: Operation,
    /// The response, if the operation completed.
    pub resp: Option<Response>,
    /// Logical time of the invocation.
    pub invoked_at: usize,
    /// Logical time of the response, if any.
    pub responded_at: Option<usize>,
}

impl OpRecord {
    /// Does this operation's interval end before `other`'s begins?
    pub fn precedes(&self, other: &OpRecord) -> bool {
        match self.responded_at {
            Some(r) => r < other.invoked_at,
            None => false,
        }
    }
}

/// A history of high-level operations with real-time intervals.
///
/// # Examples
///
/// ```
/// use rsim_smr::history::History;
/// use rsim_smr::object::{ObjectId, Operation, Response};
/// use rsim_smr::value::Value;
///
/// let mut h = History::new();
/// let w = h.invoke(0, Operation::Write { obj: ObjectId(0), value: Value::Int(1) });
/// h.respond(w, Response::Ack);
/// let r = h.invoke(1, Operation::Read { obj: ObjectId(0) });
/// h.respond(r, Response::Value(Value::Int(1)));
/// assert_eq!(h.records().len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct History {
    records: Vec<OpRecord>,
    clock: usize,
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Records the invocation of `op` by process `pid`; returns its id.
    pub fn invoke(&mut self, pid: usize, op: Operation) -> OpId {
        let id = OpId(self.records.len());
        self.clock += 1;
        self.records.push(OpRecord {
            id,
            pid,
            op,
            resp: None,
            invoked_at: self.clock,
            responded_at: None,
        });
        id
    }

    /// Records the response of operation `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or already responded.
    pub fn respond(&mut self, id: OpId, resp: Response) {
        self.clock += 1;
        let rec = &mut self.records[id.0];
        assert!(rec.responded_at.is_none(), "operation {id:?} already responded");
        rec.resp = Some(resp);
        rec.responded_at = Some(self.clock);
    }

    /// All records, in invocation order.
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// Number of completed operations.
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| r.resp.is_some()).count()
    }

    /// Number of pending (incomplete) operations.
    pub fn pending(&self) -> usize {
        self.records.len() - self.completed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectId;
    use crate::value::Value;

    fn read() -> Operation {
        Operation::Read { obj: ObjectId(0) }
    }

    #[test]
    fn intervals_order_correctly() {
        let mut h = History::new();
        let a = h.invoke(0, read());
        h.respond(a, Response::Value(Value::Nil));
        let b = h.invoke(1, read());
        h.respond(b, Response::Value(Value::Nil));
        let recs = h.records();
        assert!(recs[0].precedes(&recs[1]));
        assert!(!recs[1].precedes(&recs[0]));
    }

    #[test]
    fn concurrent_ops_do_not_precede() {
        let mut h = History::new();
        let a = h.invoke(0, read());
        let b = h.invoke(1, read());
        h.respond(a, Response::Value(Value::Nil));
        h.respond(b, Response::Value(Value::Nil));
        let recs = h.records();
        assert!(!recs[0].precedes(&recs[1]));
        assert!(!recs[1].precedes(&recs[0]));
    }

    #[test]
    fn pending_ops_counted() {
        let mut h = History::new();
        let a = h.invoke(0, read());
        let _b = h.invoke(1, read());
        h.respond(a, Response::Value(Value::Nil));
        assert_eq!(h.completed(), 1);
        assert_eq!(h.pending(), 1);
    }
}
