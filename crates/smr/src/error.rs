//! Error types for the shared-memory runtime.

use std::error::Error;
use std::fmt;

/// Errors produced by the runtime model.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ModelError {
    /// An operation was applied to an object of the wrong type or with an
    /// out-of-range component index.
    BadOperation(String),
    /// A process that already produced its output was asked to step.
    ProcessTerminated(usize),
    /// A process id or object id was out of range.
    BadId(String),
    /// A single-writer restriction was violated (process tried to update
    /// a component it does not own).
    WriterViolation { process: usize, component: usize },
    /// An execution exceeded its step budget without reaching the
    /// expected condition (e.g. a "solo terminating" run did not
    /// terminate).
    BudgetExhausted { budget: usize, context: String },
    /// A replayed step was not the process's next step (Lemma 26
    /// validation failure).
    ReplayMismatch(String),
    /// A malformed scheduler or fault-plan specification string.
    BadSpec {
        /// The spec as given.
        spec: String,
        /// Why it did not parse.
        reason: String,
    },
    /// A worker thread panicked while executing a run or expanding a
    /// frontier chunk. The payload names the work item so it can be
    /// replayed (seed, fault plan, or schedule prefix).
    WorkerPanic {
        /// What the worker was doing (replay coordinates included).
        context: String,
        /// The panic message, if it was a string.
        message: String,
    },
    /// A replay bundle failed to reproduce its recorded violation: the
    /// re-executed counterexample produced a different outcome than the
    /// fingerprint the bundle promised.
    BundleMismatch {
        /// The violation fingerprint recorded in the bundle.
        expected: u64,
        /// What the re-execution actually produced.
        actual: String,
    },
    /// A single campaign cell exceeded its per-cell wall-clock timeout
    /// and was abandoned so one pathological schedule cannot starve the
    /// worker fleet.
    CellTimeout {
        /// The configured limit, in milliseconds.
        limit_ms: u128,
        /// The cell's replay coordinates.
        context: String,
    },
    /// The pre-flight analyzer rejected the system before any schedule
    /// ran: at least one deny-level lint fired.
    PreflightRejected {
        /// The rendered deny-level diagnostics, one per line.
        diagnostics: String,
    },
    /// A resume was attempted against a checkpoint written by a
    /// *different* campaign: the checkpoint's recorded spec does not
    /// match the requested one. Merging them would silently corrupt the
    /// aggregates, so the resume fails closed naming both specs.
    ResumeMismatch {
        /// The spec the checkpoint was written under.
        checkpoint: String,
        /// The spec the resuming campaign requested.
        requested: String,
    },
    /// A campaign-service failure: journal corruption beyond recovery,
    /// an unusable state directory, or a coordinator-level protocol
    /// error. Worker deaths are *not* errors — they are leases to retry.
    Service {
        /// What the service was doing.
        context: String,
        /// Why it failed.
        reason: String,
    },
    /// The static interference matrix claimed two processes
    /// independent, but the dynamic happens-before oracle observed a
    /// dependent pair of their steps. The static pass may
    /// over-approximate dependence but never independence, so this is
    /// an analyzer bug and the run fails closed.
    StaticUnsound {
        /// The first process of the pair.
        p: usize,
        /// The second process of the pair.
        q: usize,
        /// The conflicting operations, rendered for the report.
        ops: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadOperation(msg) => write!(f, "bad operation: {msg}"),
            ModelError::ProcessTerminated(pid) => {
                write!(f, "process {pid} has already terminated")
            }
            ModelError::BadId(msg) => write!(f, "bad identifier: {msg}"),
            ModelError::WriterViolation { process, component } => write!(
                f,
                "process {process} is not the owner of single-writer component {component}"
            ),
            ModelError::BudgetExhausted { budget, context } => {
                write!(f, "step budget {budget} exhausted: {context}")
            }
            ModelError::ReplayMismatch(msg) => write!(f, "replay mismatch: {msg}"),
            ModelError::BadSpec { spec, reason } => {
                write!(f, "bad spec `{spec}`: {reason}")
            }
            ModelError::WorkerPanic { context, message } => {
                write!(f, "worker panic during {context}: {message}")
            }
            ModelError::BundleMismatch { expected, actual } => write!(
                f,
                "bundle mismatch: expected violation fingerprint {expected}, \
                 but replay produced {actual}"
            ),
            ModelError::CellTimeout { limit_ms, context } => {
                write!(f, "cell timeout after {limit_ms} ms: {context}")
            }
            ModelError::PreflightRejected { diagnostics } => {
                write!(f, "pre-flight analysis rejected the system:\n{diagnostics}")
            }
            ModelError::ResumeMismatch { checkpoint, requested } => write!(
                f,
                "resume mismatch: checkpoint was written by campaign \
                 `{checkpoint}` but the requested campaign is `{requested}` \
                 — refusing to merge incompatible aggregates"
            ),
            ModelError::Service { context, reason } => {
                write!(f, "campaign service failure during {context}: {reason}")
            }
            ModelError::StaticUnsound { p, q, ops } => write!(
                f,
                "static interference matrix unsound: p{p} and p{q} claimed \
                 independent but observed dependent at {ops}"
            ),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errs = [
            ModelError::BadOperation("x".into()),
            ModelError::ProcessTerminated(3),
            ModelError::BadId("y".into()),
            ModelError::WriterViolation { process: 1, component: 2 },
            ModelError::BudgetExhausted { budget: 10, context: "solo".into() },
            ModelError::ReplayMismatch("z".into()),
            ModelError::BadSpec { spec: "quantum:".into(), reason: "bad quantum".into() },
            ModelError::WorkerPanic {
                context: "campaign run seed 3".into(),
                message: "boom".into(),
            },
            ModelError::BundleMismatch {
                expected: 42,
                actual: "no violation".into(),
            },
            ModelError::CellTimeout {
                limit_ms: 250,
                context: "campaign run `rr` seed 9".into(),
            },
            ModelError::PreflightRejected {
                diagnostics: "error[RS-W001]: p0 writes component 1 owned by p1".into(),
            },
            ModelError::ResumeMismatch {
                checkpoint: "protocol=racing sched=rr seeds=0+10".into(),
                requested: "protocol=contrarian sched=rr seeds=0+10".into(),
            },
            ModelError::Service {
                context: "journal recovery".into(),
                reason: "state dir is not writable".into(),
            },
            ModelError::StaticUnsound {
                p: 0,
                q: 2,
                ops: "Update(obj0.1) vs Scan(obj0)".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
