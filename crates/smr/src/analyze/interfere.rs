//! Pass 3 — the static interference analyzer.
//!
//! Abstract-interprets each process's **solo footprint** (the same
//! private-copy interpretation as Pass 1) into a per-process summary of
//! which objects it reads and which component slots it writes, then
//! derives an N×N **static independence matrix**: processes `p` and `q`
//! are statically independent iff their plain-write slot sets are
//! disjoint, neither's writes overlap the other's `writemax` slots, and
//! neither reads an object the other writes (`writemax` pairs always
//! commute, §5.2, so same-slot `writemax`/`writemax` contention is not
//! an edge — mirroring the dynamic oracle [`crate::hb::independent`]).
//!
//! The matrix **over-approximates dependence, never independence**: a
//! process whose solo run errors out or exhausts its budget gets the ⊤
//! footprint (dependent on everyone), because an incomplete solo run
//! reveals only a prefix of the operations the process may issue. Even
//! a complete solo footprint can under-approximate an *adaptive*
//! process's interleaved behaviour, which is why every consumer of the
//! matrix is soundness-gated: the explorer evaluates the dynamic oracle
//! on every enabled pair and fails closed with
//! [`crate::error::ModelError::StaticUnsound`] the moment an observed
//! dependence contradicts a static independence claim.
//!
//! The footprints feed three diagnostics:
//!
//! * **RS-W008** — more *single-writer* component slots are contended
//!   by plain writes of distinct processes than the Theorem 21
//!   covering budget (the largest feasible `d`) can protect. Un-owned
//!   components are multi-writer by design (the \[16\]/\[47\]-style
//!   racing families contend on every slot) and are not counted.
//! * **RS-W009** — a process reads an object another process writes,
//!   but its solo run reads the contended component exactly once: it
//!   can never observe a concurrent install over its view (the static
//!   shadow of RS-W006).
//! * **RS-W010** — the interference graph is edge-free: every
//!   interleaving is equivalent to the solo runs, so exploration is
//!   pointless; the warning carries the exact solo-run verdicts.

use super::diag::LintCode;
use crate::object::Operation;
use crate::process::{Poised, ProcessId};
use crate::system::System;
use crate::value::Value;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One process's statically-derived solo footprint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProcessFootprint {
    /// Objects the process reads (`Scan`/`Read`, plus the
    /// order-revealing responses of `FetchInc`/`Swap`/`Cas`).
    pub reads: BTreeSet<usize>,
    /// How many times each `(object, component)` slot is read. `Scan`
    /// reads every component of its object; `Read` and the
    /// order-revealing mutators read component 0.
    pub read_counts: BTreeMap<(usize, usize), usize>,
    /// `(object, component)` slots mutated by plain (non-monotone)
    /// writes: `Update`, `Write`, `FetchInc`, `Swap`, `Cas`.
    pub writes: BTreeSet<(usize, usize)>,
    /// `(object, component)` slots mutated by `WriteMax` (monotone:
    /// same-slot pairs commute, §5.2).
    pub maxwrites: BTreeSet<(usize, usize)>,
    /// Did the solo run reach an output within the budget with no
    /// runtime error? Incomplete footprints are treated as ⊤
    /// (dependent on everyone).
    pub complete: bool,
    /// The solo-run output, when `complete`.
    pub output: Option<Value>,
}

impl ProcessFootprint {
    /// Does this footprint write (plain or monotone) anywhere in `obj`?
    fn writes_object(&self, obj: usize) -> bool {
        self.writes.iter().any(|&(o, _)| o == obj)
            || self.maxwrites.iter().any(|&(o, _)| o == obj)
    }

    /// Are two *complete* footprints independent under the static
    /// approximation of [`crate::hb::independent`]?
    fn independent_of(&self, other: &ProcessFootprint) -> bool {
        if !self.complete || !other.complete {
            return false;
        }
        // Plain-write/plain-write and plain-write/writemax slot overlap
        // is a conflict; writemax/writemax is not (max commutes).
        if self.writes.intersection(&other.writes).next().is_some()
            || self.writes.intersection(&other.maxwrites).next().is_some()
            || self.maxwrites.intersection(&other.writes).next().is_some()
        {
            return false;
        }
        // A read of an object conflicts with *any* write to it: a scan
        // observes every component, and even a single-component read
        // orders itself against same-object mutations in the dynamic
        // oracle.
        if self.reads.iter().any(|&o| other.writes_object(o))
            || other.reads.iter().any(|&o| self.writes_object(o))
        {
            return false;
        }
        true
    }
}

/// The N×N static independence matrix plus the footprints it was
/// derived from. Symmetric, irreflexive (a process is never recorded
/// independent of itself — the relation is only meaningful for
/// distinct processes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterferenceMatrix {
    n: usize,
    /// `indep[p * n + q]` — statically independent.
    indep: Vec<bool>,
    footprints: Vec<ProcessFootprint>,
}

impl InterferenceMatrix {
    /// Builds the matrix for `sys` by solo abstract interpretation with
    /// `budget` steps per process (the analyzed system is never
    /// mutated).
    pub fn build(sys: &System, budget: usize) -> InterferenceMatrix {
        let n = sys.process_count();
        let footprints: Vec<ProcessFootprint> =
            (0..n).map(|p| solo_footprint(sys, ProcessId(p), budget)).collect();
        let mut indep = vec![false; n * n];
        for p in 0..n {
            for q in (p + 1)..n {
                if footprints[p].independent_of(&footprints[q]) {
                    indep[p * n + q] = true;
                    indep[q * n + p] = true;
                }
            }
        }
        InterferenceMatrix { n, indep, footprints }
    }

    /// Builds a matrix directly from an independence relation, with no
    /// footprints. Test support only: the explorer's fail-closed audit
    /// path needs a deliberately *unsound* matrix, which
    /// [`InterferenceMatrix::build`] can never produce.
    #[cfg(test)]
    pub(crate) fn from_relation(
        n: usize,
        relation: impl Fn(usize, usize) -> bool,
    ) -> InterferenceMatrix {
        let mut indep = vec![false; n * n];
        for p in 0..n {
            for q in (p + 1)..n {
                if relation(p, q) {
                    indep[p * n + q] = true;
                    indep[q * n + p] = true;
                }
            }
        }
        InterferenceMatrix { n, indep, footprints: Vec::new() }
    }

    /// Number of processes.
    pub fn processes(&self) -> usize {
        self.n
    }

    /// Are `p` and `q` statically independent? `false` for `p == q`
    /// and out-of-range ids (fail toward dependence).
    pub fn independent(&self, p: usize, q: usize) -> bool {
        p < self.n && q < self.n && self.indep[p * self.n + q]
    }

    /// Process `p`'s independence row as a bitmask (bit `q` set when
    /// statically independent of `q`), for the explorer's 32-process
    /// mask arithmetic. Rows for `p ≥ 32` would not fit and return 0
    /// (all-dependent), matching the DPOR fallback.
    pub fn row_mask(&self, p: usize) -> u32 {
        let mut mask = 0u32;
        for q in 0..self.n.min(32) {
            if self.independent(p, q) {
                mask |= 1 << q;
            }
        }
        mask
    }

    /// Number of unordered statically-independent pairs.
    pub fn indep_pairs(&self) -> usize {
        (0..self.n)
            .map(|p| ((p + 1)..self.n).filter(|&q| self.independent(p, q)).count())
            .sum()
    }

    /// Is the interference graph edge-free (every distinct pair
    /// statically independent)? Trivially false for `n < 2`.
    pub fn is_edge_free(&self) -> bool {
        self.n >= 2 && self.indep_pairs() == self.n * (self.n - 1) / 2
    }

    /// The footprint the matrix derived for process `p`.
    pub fn footprint(&self, p: usize) -> Option<&ProcessFootprint> {
        self.footprints.get(p)
    }

    /// Renders the matrix as a grid (`·` diagonal, `I` independent,
    /// `D` dependent) with a trailing pair count, for `analyze
    /// --matrix`.
    pub fn render(&self) -> String {
        let mut out = format!(
            "static independence matrix (n = {}): I = independent, D = dependent\n",
            self.n
        );
        let _ = write!(out, "     ");
        for q in 0..self.n {
            let _ = write!(out, " p{q:<3}");
        }
        out.push('\n');
        for p in 0..self.n {
            let _ = write!(out, " p{p:<3}");
            for q in 0..self.n {
                let cell = if p == q {
                    '·'
                } else if self.independent(p, q) {
                    'I'
                } else {
                    'D'
                };
                let _ = write!(out, " {cell}   ");
            }
            out.push('\n');
        }
        let _ = write!(
            out,
            "{} statically independent pair(s) of {}",
            self.indep_pairs(),
            self.n * self.n.saturating_sub(1) / 2
        );
        out
    }
}

/// Abstract-interprets process `p`'s solo run against a private copy of
/// the objects (ownership unenforced, same as Pass 1), recording its
/// read/write footprint.
fn solo_footprint(sys: &System, pid: ProcessId, budget: usize) -> ProcessFootprint {
    let mut footprint = ProcessFootprint::default();
    let Some(proc_ref) = sys.process(pid) else {
        return footprint;
    };
    let mut proc = proc_ref.boxed_clone();
    let mut objects = sys.objects().to_vec();
    for _ in 0..budget {
        match proc.poised() {
            Poised::Output(value) => {
                footprint.complete = true;
                footprint.output = Some(value);
                break;
            }
            Poised::Step(op) => {
                record_op(&mut footprint, &op, &objects);
                let resp = match objects
                    .get_mut(op.object().0)
                    .and_then(|o| o.apply(&op).ok())
                {
                    Some(resp) => resp,
                    // A dead step (Pass 1's RS-W004 territory): the
                    // footprint stays incomplete → ⊤.
                    None => break,
                };
                proc.receive(resp);
            }
        }
    }
    footprint
}

/// Records one operation into the footprint.
fn record_op(
    footprint: &mut ProcessFootprint,
    op: &Operation,
    objects: &[crate::object::Object],
) {
    let obj = op.object().0;
    match op {
        Operation::Scan { .. } => {
            footprint.reads.insert(obj);
            let components = objects.get(obj).map_or(1, |o| o.register_cost());
            for c in 0..components {
                *footprint.read_counts.entry((obj, c)).or_insert(0) += 1;
            }
        }
        Operation::Read { .. } => {
            footprint.reads.insert(obj);
            *footprint.read_counts.entry((obj, 0)).or_insert(0) += 1;
        }
        Operation::Update { component, .. } => {
            footprint.writes.insert((obj, *component));
        }
        Operation::Write { .. } => {
            footprint.writes.insert((obj, 0));
        }
        Operation::WriteMax { component, .. } => {
            footprint.maxwrites.insert((obj, *component));
        }
        // Order-revealing read-modify-write primitives both read and
        // plain-write their single slot.
        Operation::FetchInc { .. } | Operation::Swap { .. } | Operation::Cas { .. } => {
            footprint.reads.insert(obj);
            *footprint.read_counts.entry((obj, 0)).or_insert(0) += 1;
            footprint.writes.insert((obj, 0));
        }
    }
}

/// The Theorem 21 covering budget: the largest `d` for which some
/// `f ≤ n` with `d < f` satisfies `(f - d)·m + d ≤ n` — how many
/// components the direct simulators can keep safe while the covering
/// simulators block-write the rest. 0 when the reduction is infeasible
/// outright (Pass 1's RS-W003 territory).
pub fn covering_budget(n: usize, m: usize) -> usize {
    (2..=n)
        .flat_map(|f| (0..f).map(move |d| (f, d)))
        .filter(|&(f, d)| (f - d) * m + d <= n)
        .map(|(_, d)| d)
        .max()
        .unwrap_or(0)
}

/// Runs Pass 3 over `sys`: builds the matrix and derives the
/// RS-W008/009/010 findings from its footprints.
pub fn interfere_system(sys: &System, budget: usize) -> Vec<(LintCode, String)> {
    let matrix = InterferenceMatrix::build(sys, budget);
    interfere_findings(sys, &matrix)
}

/// Derives the Pass 3 findings from a prebuilt matrix (so the CLI can
/// print the same matrix it diagnosed from).
pub fn interfere_findings(sys: &System, matrix: &InterferenceMatrix) -> Vec<(LintCode, String)> {
    let mut findings = Vec::new();
    let n = matrix.processes();
    let m = sys.space_complexity();
    if n < 2 {
        return findings;
    }

    // RS-W008: single-writer component slots contended by plain writes
    // of two or more processes, vs. the Theorem 21 covering budget.
    // Un-owned slots are multi-writer by design and not counted.
    let mut writers: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for p in 0..n {
        if let Some(fp) = matrix.footprint(p) {
            for &slot in &fp.writes {
                if sys.owner_of(crate::object::ObjectId(slot.0), slot.1).is_some() {
                    *writers.entry(slot).or_insert(0) += 1;
                }
            }
        }
    }
    let contended: Vec<(usize, usize)> =
        writers.iter().filter(|&(_, &count)| count >= 2).map(|(&slot, _)| slot).collect();
    let budget = covering_budget(n, m);
    if !contended.is_empty() && contended.len() > budget {
        let slots: Vec<String> = contended
            .iter()
            .map(|&(obj, component)| format!("obj{obj}.{component}"))
            .collect();
        findings.push((
            LintCode::StaticInterference,
            format!(
                "{} single-writer component slot(s) [{}] are plain-written by \
                 two or more processes, exceeding the Theorem 21 covering \
                 budget d = {budget} for (n = {n}, m = {m}): every block-write \
                 can be obliterated",
                contended.len(),
                slots.join(", ")
            ),
        ));
    }

    // RS-W009: a reader of a foreign-written component whose solo run
    // reads it exactly once never validates its view.
    for p in 0..n {
        let Some(fp) = matrix.footprint(p) else { continue };
        for (&(obj, component), &count) in &fp.read_counts {
            if count != 1 {
                continue;
            }
            let writer = (0..n).find(|&q| {
                q != p
                    && matrix.footprint(q).is_some_and(|other| {
                        other.writes.contains(&(obj, component))
                            || other.maxwrites.contains(&(obj, component))
                    })
            });
            if let Some(q) = writer {
                findings.push((
                    LintCode::UnvalidatedRead,
                    format!(
                        "process p{p} reads obj{obj} component {component} \
                         (written by p{q}) exactly once in its solo run and \
                         never validates it against a concurrent install"
                    ),
                ));
            }
        }
    }

    // RS-W010: an edge-free interference graph makes exploration
    // pointless — report the exact solo verdicts.
    if matrix.is_edge_free() {
        let verdicts: Vec<String> = (0..n)
            .map(|p| {
                let out = matrix
                    .footprint(p)
                    .and_then(|fp| fp.output.as_ref())
                    .map_or("?".to_string(), |v| format!("{v:?}"));
                format!("p{p} → {out}")
            })
            .collect();
        findings.push((
            LintCode::StaticSerializable,
            format!(
                "interference graph is edge-free: every schedule is equivalent \
                 to the solo runs, exploration adds nothing; solo verdicts: {}",
                verdicts.join(", ")
            ),
        ));
    }

    findings.sort_by_key(|f| f.0);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Object, ObjectId, Response};
    use crate::process::Process;

    /// Scripted process issuing arbitrary operations, then an output.
    #[derive(Clone, Debug)]
    struct Scripted {
        ops: Vec<Operation>,
        output: Value,
        at: usize,
    }

    impl Scripted {
        fn new(ops: Vec<Operation>, output: Value) -> Self {
            Scripted { ops, output, at: 0 }
        }
    }

    impl Process for Scripted {
        fn poised(&self) -> Poised {
            match self.ops.get(self.at) {
                Some(op) => Poised::Step(op.clone()),
                None => Poised::Output(self.output.clone()),
            }
        }

        fn receive(&mut self, _resp: Response) {
            self.at += 1;
        }

        fn boxed_clone(&self) -> Box<dyn Process> {
            Box::new(self.clone())
        }

        fn state_key(&self) -> String {
            format!("scripted:{}", self.at)
        }
    }

    fn system_of(scripts: Vec<Scripted>, objects: Vec<Object>) -> System {
        let processes =
            scripts.into_iter().map(|s| Box::new(s) as Box<dyn Process>).collect();
        System::new(objects, processes)
    }

    fn upd(obj: usize, component: usize, v: i64) -> Operation {
        Operation::Update { obj: ObjectId(obj), component, value: Value::Int(v) }
    }

    fn scan(obj: usize) -> Operation {
        Operation::Scan { obj: ObjectId(obj) }
    }

    fn wmax(obj: usize, component: usize, v: i64) -> Operation {
        Operation::WriteMax { obj: ObjectId(obj), component, value: Value::Int(v) }
    }

    #[test]
    fn disjoint_writers_without_reads_are_independent() {
        let sys = system_of(
            vec![
                Scripted::new(vec![upd(0, 0, 1)], Value::Int(1)),
                Scripted::new(vec![upd(0, 1, 2)], Value::Int(2)),
            ],
            vec![Object::snapshot(2)],
        );
        let matrix = InterferenceMatrix::build(&sys, 64);
        assert!(matrix.independent(0, 1));
        assert!(matrix.independent(1, 0));
        assert!(!matrix.independent(0, 0));
        assert_eq!(matrix.indep_pairs(), 1);
        assert!(matrix.is_edge_free());
        assert_eq!(matrix.row_mask(0), 0b10);
        assert_eq!(matrix.row_mask(1), 0b01);
    }

    #[test]
    fn same_slot_plain_writes_are_dependent() {
        let sys = system_of(
            vec![
                Scripted::new(vec![upd(0, 0, 1)], Value::Int(1)),
                Scripted::new(vec![upd(0, 0, 2)], Value::Int(2)),
            ],
            vec![Object::snapshot(1)],
        );
        let matrix = InterferenceMatrix::build(&sys, 64);
        assert!(!matrix.independent(0, 1));
        assert_eq!(matrix.indep_pairs(), 0);
    }

    #[test]
    fn a_scan_depends_on_any_writer_of_the_object() {
        // p0 writes component 0 only; p1 scans the whole object —
        // dependent even though p1 never writes.
        let sys = system_of(
            vec![
                Scripted::new(vec![upd(0, 0, 1)], Value::Int(1)),
                Scripted::new(vec![scan(0)], Value::Int(2)),
            ],
            vec![Object::snapshot(2)],
        );
        let matrix = InterferenceMatrix::build(&sys, 64);
        assert!(!matrix.independent(0, 1));
    }

    #[test]
    fn writemax_same_slot_pairs_commute_statically() {
        let sys = system_of(
            vec![
                Scripted::new(vec![wmax(0, 0, 1)], Value::Int(1)),
                Scripted::new(vec![wmax(0, 0, 2)], Value::Int(2)),
            ],
            vec![Object::max_register(1)],
        );
        let matrix = InterferenceMatrix::build(&sys, 64);
        assert!(matrix.independent(0, 1), "writemax/writemax must not be an edge");
        assert!(matrix.is_edge_free());
    }

    #[test]
    fn incomplete_solo_run_is_dependent_on_everyone() {
        // p0 spins forever (budget exhaustion → ⊤), p1 touches a
        // different object entirely.
        let spins: Vec<Operation> = (0..128).map(|i| upd(0, 0, i)).collect();
        let sys = system_of(
            vec![
                Scripted::new(spins, Value::Nil),
                Scripted::new(vec![upd(1, 0, 2)], Value::Int(2)),
            ],
            vec![Object::snapshot(1), Object::snapshot(1)],
        );
        let matrix = InterferenceMatrix::build(&sys, 16);
        assert!(!matrix.footprint(0).unwrap().complete);
        assert!(!matrix.independent(0, 1));
    }

    #[test]
    fn matrix_never_claims_independence_the_dynamic_oracle_denies() {
        // For every statically-independent pair, every cross pair of
        // solo-footprint operations must be dynamically independent
        // (the static relation quantifies over the footprints it saw).
        let sys = system_of(
            vec![
                Scripted::new(vec![upd(0, 0, 1), wmax(1, 0, 5)], Value::Int(1)),
                Scripted::new(vec![upd(0, 1, 2), wmax(1, 0, 7)], Value::Int(2)),
                Scripted::new(vec![scan(2)], Value::Int(3)),
            ],
            vec![Object::snapshot(2), Object::max_register(1), Object::snapshot(1)],
        );
        let matrix = InterferenceMatrix::build(&sys, 64);
        let solo_ops = |p: usize| -> Vec<Operation> {
            match p {
                0 => vec![upd(0, 0, 1), wmax(1, 0, 5)],
                1 => vec![upd(0, 1, 2), wmax(1, 0, 7)],
                _ => vec![scan(2)],
            }
        };
        for p in 0..3 {
            for q in 0..3 {
                if p != q && matrix.independent(p, q) {
                    for a in solo_ops(p) {
                        for b in solo_ops(q) {
                            assert!(
                                crate::hb::independent(&a, &b),
                                "static indep p{p},p{q} but {a:?} vs {b:?} dependent"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn covering_budget_matches_theorem_21() {
        // n = 3, m = 1: f = 3, d = 2 gives 1·1 + 2 = 3 ≤ 3.
        assert_eq!(covering_budget(3, 1), 2);
        // n = 3, m = 2: f = 2, d = 1 gives 2 + 1 = 3; d = 2 needs
        // f = 3: 2 + 2 = 4 > 3 → budget 1.
        assert_eq!(covering_budget(3, 2), 1);
        // Infeasible (n = 2, m = 8) → 0.
        assert_eq!(covering_budget(2, 8), 0);
    }

    #[test]
    fn contended_owned_writes_beyond_budget_fire_w008() {
        // n = 2, m = 2 → covering budget 0 (f=2,d=0: 2·2=4>2;
        // f=2,d=1: 2+1=3>2); one contended owned slot fires.
        let mut sys = system_of(
            vec![
                Scripted::new(vec![upd(0, 0, 1)], Value::Int(1)),
                Scripted::new(vec![upd(0, 0, 2), upd(0, 1, 2)], Value::Int(2)),
            ],
            vec![Object::snapshot(2)],
        );
        sys.restrict_writer(ObjectId(0), 0, crate::process::ProcessId(0));
        let findings = interfere_system(&sys, 64);
        assert!(
            findings.iter().any(|(c, _)| *c == LintCode::StaticInterference),
            "{findings:?}"
        );
    }

    #[test]
    fn unowned_contention_is_multi_writer_by_design() {
        // The same system without the ownership declaration: racing-
        // style multi-writer contention must not fire RS-W008.
        let sys = system_of(
            vec![
                Scripted::new(vec![upd(0, 0, 1)], Value::Int(1)),
                Scripted::new(vec![upd(0, 0, 2), upd(0, 1, 2)], Value::Int(2)),
            ],
            vec![Object::snapshot(2)],
        );
        let findings = interfere_system(&sys, 64);
        assert!(
            !findings.iter().any(|(c, _)| *c == LintCode::StaticInterference),
            "{findings:?}"
        );
    }

    #[test]
    fn single_unvalidated_read_fires_w009() {
        // p0 scans once (one read of each component) then outputs;
        // p1 writes component 0.
        let sys = system_of(
            vec![
                Scripted::new(vec![scan(0)], Value::Int(1)),
                Scripted::new(vec![upd(0, 0, 2)], Value::Int(2)),
            ],
            vec![Object::snapshot(1)],
        );
        let findings = interfere_system(&sys, 64);
        let w009: Vec<_> = findings
            .iter()
            .filter(|(c, _)| *c == LintCode::UnvalidatedRead)
            .collect();
        assert_eq!(w009.len(), 1, "{findings:?}");
        assert!(w009[0].1.contains("p0 reads obj0 component 0"), "{}", w009[0].1);

        // A re-reading scanner validates: no W009.
        let sys = system_of(
            vec![
                Scripted::new(vec![scan(0), scan(0)], Value::Int(1)),
                Scripted::new(vec![upd(0, 0, 2)], Value::Int(2)),
            ],
            vec![Object::snapshot(1)],
        );
        let findings = interfere_system(&sys, 64);
        assert!(
            !findings.iter().any(|(c, _)| *c == LintCode::UnvalidatedRead),
            "{findings:?}"
        );
    }

    #[test]
    fn edge_free_graph_fires_w010_with_solo_verdicts() {
        let sys = system_of(
            vec![
                Scripted::new(vec![wmax(0, 0, 1)], Value::Int(1)),
                Scripted::new(vec![wmax(0, 0, 2)], Value::Int(2)),
                Scripted::new(vec![wmax(0, 0, 3)], Value::Int(3)),
            ],
            vec![Object::max_register(1)],
        );
        let findings = interfere_system(&sys, 64);
        let w010: Vec<_> = findings
            .iter()
            .filter(|(c, _)| *c == LintCode::StaticSerializable)
            .collect();
        assert_eq!(w010.len(), 1, "{findings:?}");
        assert!(w010[0].1.contains("p0 → 1"), "{}", w010[0].1);
        assert!(w010[0].1.contains("p2 → 3"), "{}", w010[0].1);
    }

    #[test]
    fn render_draws_the_grid() {
        let sys = system_of(
            vec![
                Scripted::new(vec![upd(0, 0, 1)], Value::Int(1)),
                Scripted::new(vec![upd(0, 1, 2)], Value::Int(2)),
            ],
            vec![Object::snapshot(2)],
        );
        let matrix = InterferenceMatrix::build(&sys, 64);
        let rendered = matrix.render();
        assert!(rendered.contains("n = 2"), "{rendered}");
        assert!(rendered.contains('I'), "{rendered}");
        assert!(rendered.contains("1 statically independent pair(s) of 1"), "{rendered}");
    }
}
