//! Pass 2 — the happens-before trace checker.
//!
//! Threads vector clocks through a recorded [`Trace`](crate::trace::Trace)'s
//! events to flag conflicting unsynchronized accesses (**RS-W006**)
//! and certifies that every atomic Block-Update's component updates
//! form a contiguous linearization window (**RS-W007**) — a second,
//! independent angle on what `linearizability.rs` establishes by
//! search.
//!
//! The checker is sound on honest traces: a trace produced by
//! [`System::step`](crate::system::System::step) replays exactly, so
//! RS-W006 fires only when the trace shows a declared-ownership
//! violation, two causally unordered mutations of an owned component,
//! or a response that **no** sequential replay of the events can
//! explain (a tampered or unlinearizable trace).

use super::diag::LintCode;
use crate::hb::{HbObserved, HbState};
use crate::process::ProcessId;
use crate::system::{Event, System};
use crate::trace::{format_op, format_resp};
use std::collections::HashMap;

/// Runs the vector-clock and replay checks over `events`, which must
/// describe an execution starting from the configuration of `initial`
/// (objects in their initial state, processes unstarted). Returns raw
/// RS-W006 findings.
///
/// The causal bookkeeping itself lives in [`crate::hb::HbState`] (one
/// incremental summary shared with the explorer's partial-order
/// reduction); this pass feeds it the recorded events, renders its
/// observations as RS-W006 diagnostics, and layers the sequential
/// replay check on top.
pub fn check_execution(initial: &System, events: &[Event]) -> Vec<(LintCode, String)> {
    let mut findings = Vec::new();
    let n = initial.process_count();
    let mut hb = HbState::new(n);
    let owner_of = |obj, component| initial.owner_of(obj, component);
    let mut objects = initial.objects().to_vec();

    for (i, event) in events.iter().enumerate() {
        let p = event.pid.0;
        let obj = event.op.object();
        match hb.observe(event, &owner_of) {
            HbObserved::Clean => {}
            HbObserved::BogusPid => {
                findings.push((
                    LintCode::HappensBefore,
                    format!("event {i} names process p{p}, but the system has only {n}"),
                ));
                continue;
            }
            HbObserved::ForeignMutation { owner, component } => {
                findings.push((
                    LintCode::HappensBefore,
                    format!(
                        "event {i}: p{p} mutates {obj} component {component} \
                         owned by p{} (ownership violated in the trace)",
                        owner.0
                    ),
                ));
            }
            HbObserved::RacingMutation { writer, component } => {
                findings.push((
                    LintCode::HappensBefore,
                    format!(
                        "event {i}: p{p} and p{} mutate {obj} component \
                         {component} without a happens-before edge between them",
                        writer.0
                    ),
                ));
            }
        }

        // Sequential replay: the trace is an interleaving of atomic
        // steps, so applying each op in order must reproduce its
        // recorded response exactly.
        let replayed = objects
            .get_mut(obj.0)
            .ok_or_else(|| format!("no object {obj}"))
            .and_then(|o| o.apply(&event.op).map_err(|e| e.to_string()));
        match replayed {
            Ok(resp) if resp == event.resp => {}
            Ok(resp) => findings.push((
                LintCode::HappensBefore,
                format!(
                    "event {i}: p{p} {} recorded response {} but sequential replay \
                     yields {} — no linearization of this trace exists",
                    format_op(&event.op),
                    format_resp(&event.resp),
                    format_resp(&resp)
                ),
            )),
            Err(err) => findings.push((
                LintCode::HappensBefore,
                format!(
                    "event {i}: p{p} {} cannot replay against the initial \
                     configuration: {err}",
                    format_op(&event.op)
                ),
            )),
        }
    }
    findings
}

/// A linearized snapshot-level event, as extracted from a certified
/// augmented-snapshot run (`rsim-snapshot::spec::lin_events`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinEvent {
    /// An atomic scan by `pid` at linearization time `time`.
    Scan {
        /// The scanning process.
        pid: ProcessId,
        /// Position in the linear order.
        time: u64,
    },
    /// One component update of a Block-Update batch.
    Update {
        /// The updating process.
        pid: ProcessId,
        /// The component written.
        component: usize,
        /// Batch identity: updates of one Block-Update share it.
        batch: u64,
        /// Whether the batch linearized atomically (vs. yielded).
        atomic: bool,
        /// Position in the linear order.
        time: u64,
    },
}

impl LinEvent {
    fn batch(&self) -> Option<(u64, bool)> {
        match self {
            LinEvent::Update { batch, atomic, .. } => Some((*batch, *atomic)),
            LinEvent::Scan { .. } => None,
        }
    }
}

/// Certifies that every **atomic** Block-Update batch occupies a
/// contiguous window of the linearization: its updates are strictly
/// consecutive, with no scan and no other process's operation between
/// the first and the last. Returns one RS-W007 message per violated
/// batch.
pub fn check_block_update_windows(events: &[LinEvent]) -> Vec<String> {
    let mut windows: HashMap<u64, (usize, usize, usize)> = HashMap::new(); // batch -> (first, last, count)
    for (i, event) in events.iter().enumerate() {
        if let Some((batch, true)) = event.batch() {
            windows
                .entry(batch)
                .and_modify(|(_, last, count)| {
                    *last = i;
                    *count += 1;
                })
                .or_insert((i, i, 1));
        }
    }
    let mut failures: Vec<(u64, String)> = Vec::new();
    for (&batch, &(first, last, count)) in &windows {
        let span = last - first + 1;
        if span != count {
            let intruders: Vec<String> = events[first..=last]
                .iter()
                .filter(|e| e.batch() != Some((batch, true)))
                .map(|e| match e {
                    LinEvent::Scan { pid, .. } => format!("scan by p{}", pid.0),
                    LinEvent::Update { pid, batch, .. } => {
                        format!("update by p{} (batch {batch})", pid.0)
                    }
                })
                .collect();
            failures.push((
                batch,
                format!(
                    "atomic Block-Update batch {batch} spans linearization \
                     positions {first}..={last} but has only {count} updates — \
                     interleaved with: {}",
                    intruders.join(", ")
                ),
            ));
        }
    }
    failures.sort_by_key(|(batch, _)| *batch);
    failures.into_iter().map(|(_, msg)| msg).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Object, ObjectId, Operation, Response};
    use crate::sched::RoundRobin;
    use crate::value::Value;

    fn two_writer_system() -> System {
        use crate::process::{Process, SnapshotProcess};
        use crate::process::{ProtocolStep, SnapshotProtocol};

        #[derive(Clone, Debug)]
        struct WriteOnce {
            slot: usize,
            done: bool,
        }
        impl SnapshotProtocol for WriteOnce {
            fn on_scan(&mut self, _view: &[Value]) -> ProtocolStep {
                if self.done {
                    ProtocolStep::Output(Value::Int(self.slot as i64))
                } else {
                    self.done = true;
                    ProtocolStep::Update(self.slot, Value::Int(self.slot as i64))
                }
            }
            fn components(&self) -> usize {
                2
            }
        }
        let processes = (0..2)
            .map(|slot| {
                Box::new(SnapshotProcess::new(WriteOnce { slot, done: false }, ObjectId(0)))
                    as Box<dyn Process>
            })
            .collect();
        System::new(vec![Object::snapshot(2)], processes)
    }

    #[test]
    fn honest_trace_is_conflict_free() {
        let initial = two_writer_system();
        let mut sys = initial.clone();
        sys.run(&mut RoundRobin::new(), 100).unwrap();
        let events = sys.trace().to_vec();
        assert!(check_execution(&initial, &events).is_empty());
    }

    #[test]
    fn tampered_response_is_flagged() {
        let initial = two_writer_system();
        let mut sys = initial.clone();
        sys.run(&mut RoundRobin::new(), 100).unwrap();
        let mut events = sys.trace().to_vec();
        // Corrupt the last scan's view.
        let scan = events
            .iter_mut()
            .rev()
            .find(|e| matches!(e.op, Operation::Scan { .. }))
            .unwrap();
        scan.resp = Response::View(vec![Value::Int(99), Value::Int(99)]);
        let findings = check_execution(&initial, &events);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].1.contains("no linearization"), "{}", findings[0].1);
    }

    #[test]
    fn foreign_mutation_of_owned_component_is_flagged() {
        let mut initial = two_writer_system();
        initial.restrict_writer(ObjectId(0), 0, ProcessId(0));
        let events = vec![Event {
            pid: ProcessId(1),
            op: Operation::Update {
                obj: ObjectId(0),
                component: 0,
                value: Value::Int(9),
            },
            resp: Response::Ack,
        }];
        let findings = check_execution(&initial, &events);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].1.contains("owned by p0"), "{}", findings[0].1);
    }

    #[test]
    fn unordered_owner_handoff_is_flagged() {
        // Both processes mutate an owned component with no reads-from
        // edge between them: the clocks are concurrent. (Such a trace
        // cannot come from the runtime, which enforces ownership — it
        // models a merged/foreign trace under audit.)
        let mut initial = two_writer_system();
        initial.restrict_writer(ObjectId(0), 0, ProcessId(0));
        let write = |pid: usize, value: i64| Event {
            pid: ProcessId(pid),
            op: Operation::Update {
                obj: ObjectId(0),
                component: 0,
                value: Value::Int(value),
            },
            resp: Response::Ack,
        };
        let findings = check_execution(&initial, &[write(0, 1), write(1, 2)]);
        // p1's mutation violates ownership outright; the concurrency
        // check is subsumed for owned components.
        assert!(!findings.is_empty());
    }

    #[test]
    fn bogus_process_id_is_flagged() {
        let initial = two_writer_system();
        let events = vec![Event {
            pid: ProcessId(7),
            op: Operation::Scan { obj: ObjectId(0) },
            resp: Response::View(vec![Value::Nil, Value::Nil]),
        }];
        let findings = check_execution(&initial, &events);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].1.contains("p7"), "{}", findings[0].1);
    }

    fn upd(pid: usize, component: usize, batch: u64, atomic: bool, time: u64) -> LinEvent {
        LinEvent::Update { pid: ProcessId(pid), component, batch, atomic, time }
    }

    fn scan(pid: usize, time: u64) -> LinEvent {
        LinEvent::Scan { pid: ProcessId(pid), time }
    }

    #[test]
    fn contiguous_atomic_batches_certify() {
        let events = vec![
            upd(0, 0, 1, true, 0),
            upd(0, 1, 1, true, 1),
            scan(1, 2),
            upd(1, 0, 2, true, 3),
            upd(1, 1, 2, true, 4),
        ];
        assert!(check_block_update_windows(&events).is_empty());
    }

    #[test]
    fn scan_inside_atomic_window_fails() {
        let events = vec![upd(0, 0, 1, true, 0), scan(1, 1), upd(0, 1, 1, true, 2)];
        let failures = check_block_update_windows(&events);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("batch 1"), "{}", failures[0]);
        assert!(failures[0].contains("scan by p1"), "{}", failures[0]);
    }

    #[test]
    fn interleaved_atomic_batches_fail_both() {
        let events = vec![
            upd(0, 0, 1, true, 0),
            upd(1, 0, 2, true, 1),
            upd(0, 1, 1, true, 2),
            upd(1, 1, 2, true, 3),
        ];
        let failures = check_block_update_windows(&events);
        assert_eq!(failures.len(), 2);
    }

    #[test]
    fn yielded_batches_are_exempt() {
        // Non-atomic (yielded) Block-Updates may interleave freely.
        let events = vec![
            upd(0, 0, 1, false, 0),
            scan(1, 1),
            upd(0, 1, 1, false, 2),
        ];
        assert!(check_block_update_windows(&events).is_empty());
    }
}
