//! Pre-flight protocol analyzer and happens-before trace checker.
//!
//! Every theorem the model checker exercises carries structural
//! preconditions that the runtime would otherwise only discover
//! dynamically, deep inside a campaign: §3's augmented snapshot is
//! built from a *single-writer* snapshot, Corollary 36 requires
//! *ABA-free* protocols, and Theorem 21's reduction only fires when
//! the component footprint fits the space bound. This module checks
//! them **up front**:
//!
//! * [`lint`] — Pass 1, a static linter: abstract solo interpretation
//!   of every process's `Operation`/`Poised`/`ProtocolStep` footprint
//!   without executing a schedule (RS-W001..RS-W005).
//! * [`hb`] — Pass 2, a happens-before checker: vector clocks over a
//!   recorded trace plus sequential replay (RS-W006), and contiguous
//!   Block-Update linearization windows (RS-W007).
//! * [`interfere`] — Pass 3, the static interference analyzer: solo
//!   footprints condensed into an N×N independence matrix that seeds
//!   the explorer's partial-order reduction, plus the
//!   RS-W008/009/010 diagnostics.
//! * [`diag`] — the diagnostics framework: stable lint codes,
//!   severities, `--deny`/`--warn`/`--allow` configuration.
//!
//! [`preflight`] is the campaign/explorer entry point: it runs Pass 1
//! and rejects the system with
//! [`ModelError::PreflightRejected`] when any deny-level diagnostic
//! fires.

pub mod diag;
pub mod hb;
pub mod interfere;
pub mod lint;

pub use diag::{known_codes, AnalysisReport, Diagnostic, LintCode, LintConfig, Severity};
pub use hb::{check_block_update_windows, check_execution, LinEvent};
pub use interfere::{
    covering_budget, interfere_findings, interfere_system, InterferenceMatrix,
    ProcessFootprint,
};
pub use lint::{check_aba_events, contains_yield, lint_system, yield_symbol, DEFAULT_BUDGET};

use crate::error::ModelError;
use crate::system::{Event, System};

/// Runs Pass 1 (static lint) and Pass 3 (static interference) over
/// `sys` and builds a report under `config`.
pub fn analyze_system(sys: &System, config: &LintConfig, budget: usize) -> AnalysisReport {
    let mut findings = lint::lint_system(sys, budget);
    findings.extend(interfere::interfere_system(sys, budget));
    AnalysisReport::from_findings(findings, config)
}

/// Runs Pass 2 over `events` (an execution from `initial`) and builds
/// a report under `config`.
pub fn analyze_trace(initial: &System, events: &[Event], config: &LintConfig) -> AnalysisReport {
    AnalysisReport::from_findings(hb::check_execution(initial, events), config)
}

/// The mandatory campaign/explorer pre-flight: Pass 1 with the given
/// configuration; any deny-level diagnostic rejects the system.
///
/// # Errors
///
/// [`ModelError::PreflightRejected`] carrying the rendered deny-level
/// diagnostics, one per line.
pub fn preflight(sys: &System, config: &LintConfig) -> Result<AnalysisReport, ModelError> {
    let report = analyze_system(sys, config, DEFAULT_BUDGET);
    if report.is_clean() {
        Ok(report)
    } else {
        Err(ModelError::PreflightRejected { diagnostics: report.render_denied() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Object, ObjectId};
    use crate::process::{Process, ProcessId, ProtocolStep, SnapshotProcess, SnapshotProtocol};
    use crate::value::Value;

    #[derive(Clone, Debug)]
    struct Toggler {
        step: usize,
    }

    impl SnapshotProtocol for Toggler {
        fn on_scan(&mut self, _view: &[Value]) -> ProtocolStep {
            self.step += 1;
            match self.step {
                1 => ProtocolStep::Update(0, Value::Int(1)),
                2 => ProtocolStep::Update(0, Value::Int(2)),
                3 => ProtocolStep::Update(0, Value::Int(1)), // ABA
                _ => ProtocolStep::Output(Value::Int(1)),
            }
        }
        fn components(&self) -> usize {
            1
        }
    }

    fn toggler_system() -> System {
        System::new(
            vec![Object::snapshot(1)],
            vec![Box::new(SnapshotProcess::new(Toggler { step: 0 }, ObjectId(0)))
                as Box<dyn Process>],
        )
    }

    #[test]
    fn preflight_rejects_on_deny_and_reports_the_code() {
        let err = preflight(&toggler_system(), &LintConfig::default()).unwrap_err();
        match &err {
            ModelError::PreflightRejected { diagnostics } => {
                assert!(diagnostics.contains("error[RS-W002]"), "{diagnostics}");
            }
            other => panic!("expected PreflightRejected, got {other:?}"),
        }
    }

    #[test]
    fn preflight_passes_when_the_code_is_allowed() {
        let mut config = LintConfig::default();
        config.set(LintCode::AbaFreedom, Severity::Allow);
        let report = preflight(&toggler_system(), &config).unwrap();
        assert!(report.is_clean());
        assert!(!report.has(LintCode::AbaFreedom));
    }

    #[test]
    fn preflight_passes_warn_level_findings_through() {
        let mut config = LintConfig::default();
        config.set(LintCode::AbaFreedom, Severity::Warn);
        let report = preflight(&toggler_system(), &config).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.warn_count(), 1);
        assert!(report.has(LintCode::AbaFreedom));
    }

    #[test]
    fn analyze_trace_covers_pass_two() {
        let initial = toggler_system();
        let mut sys = initial.clone();
        sys.run_solo(ProcessId(0), 64).unwrap();
        let events = sys.trace().to_vec();
        let report = analyze_trace(&initial, &events, &LintConfig::default());
        assert!(report.is_clean(), "{}", report.render());
    }
}
