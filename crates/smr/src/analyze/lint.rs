//! Pass 1 — the static protocol linter.
//!
//! An abstract interpreter over `Operation`/`Poised`/`ProtocolStep`
//! footprints: each process is run *solo* against a private copy of
//! the base objects, with ownership enforcement disabled so that its
//! **intended** writes become observable even when the runtime would
//! reject them. No schedule is executed and the analyzed [`System`] is
//! never mutated.
//!
//! The solo streams feed five checks:
//!
//! * **RS-W001** — a mutation targets a component whose declared
//!   owner is another process (§3 single-writer precondition).
//! * **RS-W002** — a process's own writable value stream revisits an
//!   earlier value (Corollary 36 ABA-freedom), via
//!   [`check_aba_events`].
//! * **RS-W003** — no `(f, d)` pair makes Theorem 21's reduction
//!   feasible for this `(n, m)` footprint.
//! * **RS-W004** — a solo run errors out or exhausts its budget
//!   without an output: the remaining steps are dead or the structure
//!   (e.g. a 6-step Block-Update) can never complete.
//! * **RS-W005** — the reserved yield symbol leaks into a component
//!   or an output.

use super::diag::LintCode;
use crate::object::Operation;
use crate::process::{Poised, ProcessId};
use crate::system::{Event, System};
use crate::value::Value;
use std::collections::HashMap;

/// Default solo-step budget for the abstract interpreter.
pub const DEFAULT_BUDGET: usize = 256;

/// The reserved yield symbol `Y` (§4): the empty tuple, which no
/// well-formed protocol value uses. Protocol writes and outputs must
/// never contain it — the augmented snapshot construction reserves it
/// for yielded Block-Updates.
pub fn yield_symbol() -> Value {
    Value::Tuple(Vec::new())
}

/// `true` when `value` is (or contains) the reserved yield symbol.
pub fn contains_yield(value: &Value) -> bool {
    match value {
        Value::Tuple(items) => items.is_empty() || items.iter().any(contains_yield),
        Value::Pair(a, b) => contains_yield(a) || contains_yield(b),
        _ => false,
    }
}

/// The component a mutation writes (mirrors the runtime's ownership
/// check). Re-exported from the happens-before runtime core, which the
/// linter shares with the explorer's partial-order reduction.
pub use crate::hb::mutated_component;

/// The value a mutation writes, if it writes one unconditionally.
fn written_value(op: &Operation) -> Option<&Value> {
    match op {
        Operation::Write { value, .. }
        | Operation::Update { value, .. }
        | Operation::WriteMax { value, .. }
        | Operation::Swap { value, .. } => Some(value),
        Operation::Cas { update, .. } => Some(update),
        _ => None,
    }
}

/// Checks an event stream for ABA patterns: per `(object, component)`,
/// no value may reappear after the component held a different value in
/// between. This is the core of `rsim-solo::aba::check_aba_freedom`
/// (which now delegates here) — Corollary 36's precondition.
///
/// # Errors
///
/// Returns a description of the first ABA pattern found.
pub fn check_aba_events<'a, I>(trace: I) -> Result<(), String>
where
    I: IntoIterator<Item = &'a Event>,
{
    // Per (object, component): full value history.
    let mut histories: HashMap<(usize, usize), Vec<Value>> = HashMap::new();
    for event in trace {
        let (obj, component, value) = match &event.op {
            Operation::Update { obj, component, value } => (obj.0, *component, value),
            Operation::Write { obj, value } => (obj.0, 0, value),
            _ => continue,
        };
        let history = histories.entry((obj, component)).or_default();
        if history.last() == Some(value) {
            continue; // value unchanged: not an ABA
        }
        if history.contains(value) {
            return Err(format!(
                "ABA on object {obj} component {component}: value {value:?} \
                 reappears after {:?}",
                history.last()
            ));
        }
        history.push(value.clone());
    }
    Ok(())
}

/// Theorem 21's reduction is feasible for some `(f, d)` iff
/// `d < f && (f - d) * m + d <= n` has a solution with `2 <= f <= n`.
/// (Inlined from `rsim-core::bounds::simulation_feasible` — the core
/// crate depends on this one, so the formula cannot be imported.)
fn reduction_feasible(n: usize, m: usize) -> bool {
    (2..=n).any(|f| (0..f).any(|d| (f - d) * m + d <= n))
}

/// Runs Pass 1 over `sys`, returning raw `(code, message)` findings.
/// `budget` bounds each process's solo interpretation (use
/// [`DEFAULT_BUDGET`] unless the protocol needs longer solo runs).
pub fn lint_system(sys: &System, budget: usize) -> Vec<(LintCode, String)> {
    let mut findings = Vec::new();
    let n = sys.process_count();
    let m = sys.space_complexity();

    // (c) component footprint vs. the Theorem 21 bound.
    if n >= 2 && !reduction_feasible(n, m) {
        findings.push((
            LintCode::Footprint,
            format!(
                "footprint m = {m} registers with n = {n} processes: no (f, d) \
                 satisfies (f - d)*m + d <= n, so Theorem 21's reduction cannot fire"
            ),
        ));
    }

    // Solo abstract interpretation, one process at a time.
    for pid in (0..n).map(ProcessId) {
        let Some(proc_ref) = sys.process(pid) else { continue };
        let mut proc = proc_ref.boxed_clone();
        let mut objects = sys.objects().to_vec();
        let mut stream: Vec<Event> = Vec::new();
        let mut outcome: Option<Value> = None;

        for step in 0..budget {
            match proc.poised() {
                Poised::Output(value) => {
                    outcome = Some(value);
                    break;
                }
                Poised::Step(op) => {
                    // (a) single-writer discipline: intended write vs.
                    // declared owner.
                    if let Some(component) = mutated_component(&op) {
                        if let Some(owner) = sys.owner_of(op.object(), component) {
                            if owner != pid {
                                findings.push((
                                    LintCode::SingleWriter,
                                    format!(
                                        "process p{} mutates {} component {component} \
                                         owned by p{} (single-writer discipline, §3)",
                                        pid.0,
                                        op.object(),
                                        owner.0
                                    ),
                                ));
                            }
                        }
                    }
                    // (e) yield-symbol leakage into a component.
                    if let Some(value) = written_value(&op) {
                        if contains_yield(value) {
                            findings.push((
                                LintCode::YieldSymbol,
                                format!(
                                    "process p{} writes the reserved yield symbol Y \
                                     via {} at solo step {step}",
                                    pid.0,
                                    crate::trace::format_op(&op)
                                ),
                            ));
                        }
                    }
                    // Apply directly to the private copy — ownership
                    // deliberately unenforced so the intended write is
                    // observable.
                    let resp = match objects
                        .get_mut(op.object().0)
                        .ok_or_else(|| format!("no object {}", op.object()))
                        .and_then(|o| o.apply(&op).map_err(|e| e.to_string()))
                    {
                        Ok(resp) => resp,
                        Err(err) => {
                            findings.push((
                                LintCode::DeadStep,
                                format!(
                                    "process p{}'s solo step {step} \
                                     ({}) cannot execute: {err}",
                                    pid.0,
                                    crate::trace::format_op(&op)
                                ),
                            ));
                            break;
                        }
                    };
                    stream.push(Event { pid, op, resp: resp.clone() });
                    proc.receive(resp);
                }
            }
        }

        match &outcome {
            // (e) yield-symbol leakage into the output.
            Some(value) if contains_yield(value) => findings.push((
                LintCode::YieldSymbol,
                format!("process p{} outputs the reserved yield symbol Y", pid.0),
            )),
            Some(_) => {}
            // (d) no output within the budget: dead steps or a
            // Block-Update that never completes its 6-step structure.
            None if stream.len() >= budget => findings.push((
                LintCode::DeadStep,
                format!(
                    "process p{} produces no output within {budget} solo steps: \
                     remaining protocol steps are unreachable or its Block-Update \
                     never completes",
                    pid.0
                ),
            )),
            None => {}
        }

        // (b) ABA-freedom of this process's own writable value stream.
        if let Err(err) = check_aba_events(&stream) {
            findings.push((
                LintCode::AbaFreedom,
                format!("process p{}'s solo write stream violates ABA-freedom: {err}", pid.0),
            ));
        }
    }

    findings.sort_by_key(|f| f.0);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Object, ObjectId, Response};
    use crate::process::Process;

    /// Writes the given component values in order, then outputs.
    #[derive(Clone, Debug)]
    struct Scripted {
        writes: Vec<(usize, Value)>,
        output: Value,
        at: usize,
        waiting: bool,
    }

    impl Scripted {
        fn new(writes: Vec<(usize, Value)>, output: Value) -> Self {
            Scripted { writes, output, at: 0, waiting: false }
        }
    }

    impl Process for Scripted {
        fn poised(&self) -> Poised {
            match self.writes.get(self.at) {
                Some((component, value)) => Poised::Step(Operation::Update {
                    obj: ObjectId(0),
                    component: *component,
                    value: value.clone(),
                }),
                None => Poised::Output(self.output.clone()),
            }
        }

        fn receive(&mut self, _resp: Response) {
            assert!(!self.waiting);
            self.at += 1;
        }

        fn boxed_clone(&self) -> Box<dyn Process> {
            Box::new(self.clone())
        }

        fn state_key(&self) -> String {
            format!("scripted:{}", self.at)
        }
    }

    fn scripted_system(scripts: Vec<Scripted>, m: usize) -> System {
        let processes = scripts
            .into_iter()
            .map(|s| Box::new(s) as Box<dyn Process>)
            .collect();
        System::new(vec![Object::snapshot(m)], processes)
    }

    fn codes(findings: &[(LintCode, String)]) -> Vec<LintCode> {
        findings.iter().map(|(c, _)| *c).collect()
    }

    #[test]
    fn clean_protocol_produces_no_findings() {
        // n = 3, m = 2 is Theorem 21-feasible (f = 2, d = 1).
        let sys = scripted_system(
            vec![
                Scripted::new(vec![(0, Value::Int(1))], Value::Int(1)),
                Scripted::new(vec![(1, Value::Int(2))], Value::Int(2)),
                Scripted::new(vec![(0, Value::Int(3))], Value::Int(3)),
            ],
            2,
        );
        assert!(lint_system(&sys, DEFAULT_BUDGET).is_empty());
    }

    #[test]
    fn trespassing_write_fires_w001() {
        let mut sys = scripted_system(
            vec![
                Scripted::new(vec![(1, Value::Int(7))], Value::Int(0)),
                Scripted::new(vec![(1, Value::Int(8))], Value::Int(0)),
                Scripted::new(vec![(0, Value::Int(9))], Value::Int(0)),
            ],
            2,
        );
        sys.restrict_writer(ObjectId(0), 1, ProcessId(1));
        let findings = lint_system(&sys, DEFAULT_BUDGET);
        assert_eq!(codes(&findings), vec![LintCode::SingleWriter]);
        assert!(findings[0].1.contains("p0"), "{}", findings[0].1);
        assert!(findings[0].1.contains("owned by p1"), "{}", findings[0].1);
    }

    #[test]
    fn value_revisit_fires_w002() {
        let sys = scripted_system(
            vec![Scripted::new(
                vec![(0, Value::Int(1)), (0, Value::Int(2)), (0, Value::Int(1))],
                Value::Int(1),
            )],
            1,
        );
        // n = 1: the footprint check is skipped, only ABA fires.
        let findings = lint_system(&sys, DEFAULT_BUDGET);
        assert_eq!(codes(&findings), vec![LintCode::AbaFreedom]);
    }

    #[test]
    fn infeasible_footprint_fires_w003() {
        // n = 2, m = 8: (f - d)*8 + d <= 2 has no solution with d < f.
        let sys = scripted_system(
            vec![
                Scripted::new(vec![(0, Value::Int(1))], Value::Int(1)),
                Scripted::new(vec![(1, Value::Int(2))], Value::Int(2)),
            ],
            8,
        );
        let findings = lint_system(&sys, DEFAULT_BUDGET);
        assert_eq!(codes(&findings), vec![LintCode::Footprint]);
    }

    #[test]
    fn feasibility_formula_matches_theorem_21() {
        // racing defaults: n = 3, m = 2 — f = 2, d = 1 gives 2 + 1 <= 3.
        assert!(reduction_feasible(3, 2));
        assert!(!reduction_feasible(4, 8));
        assert!(reduction_feasible(10, 1));
    }

    #[test]
    fn budget_exhaustion_fires_w004() {
        // A spinner: writes fresh values forever, never outputs.
        let writes: Vec<(usize, Value)> =
            (0..512).map(|i| (0usize, Value::Int(i))).collect();
        let sys = scripted_system(vec![Scripted::new(writes, Value::Nil)], 1);
        let findings = lint_system(&sys, 16);
        assert_eq!(codes(&findings), vec![LintCode::DeadStep]);
        assert!(findings[0].1.contains("16 solo steps"), "{}", findings[0].1);
    }

    #[test]
    fn bad_component_fires_w004() {
        // Component 5 of a 2-component snapshot does not exist.
        let sys = scripted_system(
            vec![Scripted::new(vec![(5, Value::Int(1))], Value::Int(1))],
            2,
        );
        let findings = lint_system(&sys, DEFAULT_BUDGET);
        assert_eq!(codes(&findings), vec![LintCode::DeadStep]);
        assert!(findings[0].1.contains("cannot execute"), "{}", findings[0].1);
    }

    #[test]
    fn yield_leak_fires_w005_for_write_and_output() {
        let sys = scripted_system(
            vec![Scripted::new(vec![(0, yield_symbol())], yield_symbol())],
            1,
        );
        let findings = lint_system(&sys, DEFAULT_BUDGET);
        assert_eq!(
            codes(&findings),
            vec![LintCode::YieldSymbol, LintCode::YieldSymbol]
        );
    }

    #[test]
    fn yield_detection_sees_nested_values() {
        assert!(contains_yield(&yield_symbol()));
        assert!(contains_yield(&Value::pair(Value::Int(1), yield_symbol())));
        assert!(contains_yield(&Value::Tuple(vec![Value::Int(1), yield_symbol()])));
        assert!(!contains_yield(&Value::Nil));
        assert!(!contains_yield(&Value::triple(
            Value::Int(1),
            Value::Int(2),
            Value::Int(3)
        )));
    }

    #[test]
    fn aba_core_matches_previous_solo_semantics() {
        let ev = |value: i64| Event {
            pid: ProcessId(0),
            op: Operation::Update {
                obj: ObjectId(0),
                component: 0,
                value: Value::Int(value),
            },
            resp: Response::Ack,
        };
        // Repeats of the current value are not ABA.
        check_aba_events(&[ev(1), ev(1), ev(2)]).unwrap();
        // A revisit after an intervening value is.
        let err = check_aba_events(&[ev(1), ev(2), ev(1)]).unwrap_err();
        assert!(err.contains("ABA on object 0 component 0"), "{err}");
    }
}
