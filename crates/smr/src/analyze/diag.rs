//! Structured diagnostics: stable lint codes, severity levels, and the
//! `--deny`/`--warn`/`--allow` configuration surface.
//!
//! Every finding the analyzer can emit carries a stable `RS-Wxxx`
//! code; campaigns and CI pin behaviour to the code, never to the
//! message text. Severities follow the rustc model: `deny` findings
//! reject the protocol (pre-flight failure / nonzero exit), `warn`
//! findings are reported but do not fail, `allow` findings are
//! dropped.

use crate::error::ModelError;
use std::fmt;

/// A stable lint code. The numeric ids are frozen: tests, CI jobs and
/// downstream tooling match on them, so codes are never renumbered —
/// retired codes would be tombstoned, new checks get fresh numbers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LintCode {
    /// RS-W001 — single-writer discipline: a process mutates a
    /// snapshot component owned by another process (§3 precondition).
    SingleWriter,
    /// RS-W002 — ABA-freedom: a process's solo writable value stream
    /// revisits an earlier value (Corollary 36 precondition).
    AbaFreedom,
    /// RS-W003 — component footprint vs. the space bound: no
    /// `(f, d)` makes Theorem 21's reduction feasible for this `(n, m)`.
    Footprint,
    /// RS-W004 — dead or unreachable protocol step: a process's solo
    /// run errors out or exhausts its budget without producing an
    /// output (a Block-Update that can never complete its 6-step
    /// structure surfaces the same way).
    DeadStep,
    /// RS-W005 — yield-symbol handling: the reserved yield symbol `Y`
    /// leaks into a component or an output.
    YieldSymbol,
    /// RS-W006 — happens-before conflict: the trace shows an
    /// unsynchronized conflicting access to an owned component, or a
    /// response no sequential replay of the trace can explain.
    HappensBefore,
    /// RS-W007 — Block-Update linearization window: an atomic
    /// Block-Update's component updates do not form a contiguous
    /// window in the linearization.
    BlockUpdateWindow,
    /// RS-W008 — static write-write interference: the number of
    /// single-writer components contended by plain (non-monotone)
    /// writes of two or more processes exceeds the Theorem 21 covering
    /// budget, so a block-write by the covering simulators can always
    /// be obliterated.
    StaticInterference,
    /// RS-W009 — unvalidated read-after-write hazard: a process reads a
    /// component another process writes, but its solo run reads it only
    /// once — it can never observe the foreign write being installed
    /// over its view (the static shadow of RS-W006).
    UnvalidatedRead,
    /// RS-W010 — statically-serializable protocol: the interference
    /// graph has no edges, so every interleaving is equivalent to the
    /// solo runs and schedule exploration is pointless.
    StaticSerializable,
}

impl LintCode {
    /// Every known code, in id order.
    pub fn all() -> &'static [LintCode] {
        &[
            LintCode::SingleWriter,
            LintCode::AbaFreedom,
            LintCode::Footprint,
            LintCode::DeadStep,
            LintCode::YieldSymbol,
            LintCode::HappensBefore,
            LintCode::BlockUpdateWindow,
            LintCode::StaticInterference,
            LintCode::UnvalidatedRead,
            LintCode::StaticSerializable,
        ]
    }

    /// The stable `RS-Wxxx` id.
    pub fn id(self) -> &'static str {
        match self {
            LintCode::SingleWriter => "RS-W001",
            LintCode::AbaFreedom => "RS-W002",
            LintCode::Footprint => "RS-W003",
            LintCode::DeadStep => "RS-W004",
            LintCode::YieldSymbol => "RS-W005",
            LintCode::HappensBefore => "RS-W006",
            LintCode::BlockUpdateWindow => "RS-W007",
            LintCode::StaticInterference => "RS-W008",
            LintCode::UnvalidatedRead => "RS-W009",
            LintCode::StaticSerializable => "RS-W010",
        }
    }

    /// One-line summary of what the code checks.
    pub fn summary(self) -> &'static str {
        match self {
            LintCode::SingleWriter => "single-writer discipline (§3)",
            LintCode::AbaFreedom => "ABA-freedom of writable value streams (Corollary 36)",
            LintCode::Footprint => "component footprint vs. Theorem 21 reduction bound",
            LintCode::DeadStep => "dead/unreachable protocol steps",
            LintCode::YieldSymbol => "yield-symbol handling completeness",
            LintCode::HappensBefore => "happens-before conflicts in the trace",
            LintCode::BlockUpdateWindow => "contiguous Block-Update linearization windows",
            LintCode::StaticInterference => {
                "static write-write interference vs. the Theorem 21 covering budget"
            }
            LintCode::UnvalidatedRead => "unvalidated read-after-write hazards",
            LintCode::StaticSerializable => "statically-serializable interference graph",
        }
    }

    /// The paper-clause rationale behind the check: why the paper's
    /// argument needs the property, in a few sentences. Surfaced by
    /// `analyze --explain RS-W0NN` so the DESIGN.md mapping table is
    /// reachable from the terminal.
    pub fn rationale(self) -> &'static str {
        match self {
            LintCode::SingleWriter => {
                "§3 restricts protocols to single-writer snapshots: component j \
                 of the snapshot object is written only by process j. The \
                 revisionist simulation relies on this to revise the past — a \
                 covering simulator can only locally re-run p's solo execution \
                 because nobody else can have written p's components."
            }
            LintCode::AbaFreedom => {
                "Corollary 36 extends the lower bound to ABA-free objects: if a \
                 process's solo stream of written values revisits an earlier \
                 value, a simulator that missed the intermediate writes cannot \
                 distinguish the configurations, and the covering argument's \
                 observable contradiction dissolves."
            }
            LintCode::Footprint => {
                "Theorem 21 needs some split n = f + (n - f) with d direct \
                 simulators such that (f - d)·m + d ≤ n: the f covering \
                 simulators must be able to cover all m components while d \
                 direct simulators run the protocol. If no (f, d) is feasible \
                 for this (n, m), the reduction cannot even be set up."
            }
            LintCode::DeadStep => {
                "§2 defines protocols by what each process is poised to do; a \
                 process whose solo run never reaches an output (budget \
                 exhaustion or a runtime error) violates obstruction-freedom's \
                 solo-termination requirement and makes every covering \
                 simulator's local simulation diverge."
            }
            LintCode::YieldSymbol => {
                "The simulation reserves a yield symbol Y that covering \
                 simulators write to hand a component back; a protocol that \
                 itself writes Y (or outputs it) is indistinguishable from the \
                 simulation machinery and breaks the revision bookkeeping."
            }
            LintCode::HappensBefore => {
                "§2's atomicity model linearizes every base-object step; a \
                 trace whose responses no sequential replay can explain, or an \
                 unsynchronized conflicting access to an owned component, is \
                 outside the model the lower bound reasons about."
            }
            LintCode::BlockUpdateWindow => {
                "Lemma 9's block-update must appear atomic: all component \
                 updates of one block must form a contiguous window in the \
                 linearization, otherwise a scan can observe a half-installed \
                 block and the augmented snapshot's views are not snapshots."
            }
            LintCode::StaticInterference => {
                "Theorem 21's covering argument block-writes the contended \
                 components; the budget of components the covering simulators \
                 can keep covered is the largest feasible d in \
                 (f - d)·m + d ≤ n. If more components are contended by plain \
                 writes of distinct processes than the budget covers, every \
                 block-write can be obliterated before it is observed and the \
                 observable-contradiction step of the proof has no witness."
            }
            LintCode::UnvalidatedRead => {
                "§4.1's revision step re-runs a reader locally assuming memory \
                 contents V; that is only sound if the reader re-validates any \
                 component a concurrent writer may install over its view. A \
                 reader whose solo run reads a foreign-written component \
                 exactly once can carry a stale view to its output without any \
                 later scan catching it — the static shadow of the dynamic \
                 happens-before check (RS-W006)."
            }
            LintCode::StaticSerializable => {
                "If no two processes statically interfere (disjoint write \
                 sets, nobody reads a foreign write set), every interleaving \
                 is Mazurkiewicz-equivalent to the sequence of solo runs: the \
                 schedule space collapses to one trace and exploration adds \
                 nothing over the solo verdicts (the degenerate case of the \
                 §2 indistinguishability machinery)."
            }
        }
    }

    /// The severity applied when no override is given.
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::SingleWriter => Severity::Deny,
            LintCode::AbaFreedom => Severity::Deny,
            LintCode::Footprint => Severity::Warn,
            LintCode::DeadStep => Severity::Warn,
            LintCode::YieldSymbol => Severity::Warn,
            LintCode::HappensBefore => Severity::Deny,
            LintCode::BlockUpdateWindow => Severity::Deny,
            LintCode::StaticInterference => Severity::Warn,
            LintCode::UnvalidatedRead => Severity::Warn,
            LintCode::StaticSerializable => Severity::Warn,
        }
    }

    /// Parses a stable id. Unknown ids fail closed, suggesting the
    /// nearest valid code by edit distance and listing every known
    /// code (same ergonomics as `SchedulerSpec::parse`).
    ///
    /// # Errors
    ///
    /// [`ModelError::BadSpec`] naming the bad id, the nearest known
    /// code, and all known codes.
    pub fn parse(spec: &str) -> Result<LintCode, ModelError> {
        let wanted = spec.trim();
        LintCode::all()
            .iter()
            .copied()
            .find(|c| c.id().eq_ignore_ascii_case(wanted))
            .ok_or_else(|| {
                let suggestion = nearest_code(wanted)
                    .map(|c| format!("did you mean {}? ", c.id()))
                    .unwrap_or_default();
                ModelError::BadSpec {
                    spec: wanted.to_string(),
                    reason: format!(
                        "unknown lint code; {suggestion}known codes: {}",
                        known_codes()
                    ),
                }
            })
    }

    fn index(self) -> usize {
        match self {
            LintCode::SingleWriter => 0,
            LintCode::AbaFreedom => 1,
            LintCode::Footprint => 2,
            LintCode::DeadStep => 3,
            LintCode::YieldSymbol => 4,
            LintCode::HappensBefore => 5,
            LintCode::BlockUpdateWindow => 6,
            LintCode::StaticInterference => 7,
            LintCode::UnvalidatedRead => 8,
            LintCode::StaticSerializable => 9,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// The comma-separated list of every known code, for error messages
/// and CLI usage hints.
pub fn known_codes() -> String {
    let ids: Vec<&str> = LintCode::all().iter().map(|c| c.id()).collect();
    ids.join(", ")
}

/// The known code nearest to `wanted` by case-insensitive Levenshtein
/// distance, when that distance is small enough (≤ 2) for the
/// suggestion to be plausible rather than noise.
fn nearest_code(wanted: &str) -> Option<LintCode> {
    let wanted = wanted.to_ascii_uppercase();
    LintCode::all()
        .iter()
        .copied()
        .map(|c| (edit_distance(&wanted, c.id()), c))
        .min_by_key(|&(d, c)| (d, c.index()))
        .filter(|&(d, _)| d <= 2)
        .map(|(_, c)| c)
}

/// Levenshtein distance over bytes (lint ids are ASCII), one-row DP.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = if ca == cb { prev } else { prev + 1 };
            prev = row[j + 1];
            row[j + 1] = cost.min(prev + 1).min(row[j] + 1);
        }
    }
    row[b.len()]
}

/// How a lint code is treated when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Drop the finding silently.
    Allow,
    /// Report the finding; do not fail.
    Warn,
    /// Report the finding and fail the analysis (pre-flight rejection,
    /// nonzero CLI exit).
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// Per-code severity configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintConfig {
    severities: [Severity; 10],
}

impl Default for LintConfig {
    fn default() -> Self {
        let mut severities = [Severity::Warn; 10];
        for &code in LintCode::all() {
            severities[code.index()] = code.default_severity();
        }
        LintConfig { severities }
    }
}

impl LintConfig {
    /// The effective severity of `code`.
    pub fn severity(&self, code: LintCode) -> Severity {
        self.severities[code.index()]
    }

    /// Overrides one code's severity.
    pub fn set(&mut self, code: LintCode, severity: Severity) -> &mut Self {
        self.severities[code.index()] = severity;
        self
    }

    /// Applies `--deny`/`--warn`/`--allow` comma-separated code lists.
    /// Unknown codes fail closed (listing every known code); a code
    /// named in two lists is rejected as contradictory.
    ///
    /// # Errors
    ///
    /// [`ModelError::BadSpec`] for an unknown code or a code assigned
    /// two severities.
    pub fn apply_overrides(
        &mut self,
        deny: &str,
        warn: &str,
        allow: &str,
    ) -> Result<&mut Self, ModelError> {
        let mut assigned: Vec<LintCode> = Vec::new();
        for (list, severity) in [
            (deny, Severity::Deny),
            (warn, Severity::Warn),
            (allow, Severity::Allow),
        ] {
            for item in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                let code = LintCode::parse(item)?;
                if assigned.contains(&code) {
                    return Err(ModelError::BadSpec {
                        spec: item.to_string(),
                        reason: "lint code assigned two severities".to_string(),
                    });
                }
                assigned.push(code);
                self.set(code, severity);
            }
        }
        Ok(self)
    }
}

/// One analyzer finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable lint code.
    pub code: LintCode,
    /// Effective severity under the active [`LintConfig`].
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let head = match self.severity {
            Severity::Deny => "error",
            _ => "warning",
        };
        write!(f, "{head}[{}]: {}", self.code, self.message)
    }
}

/// The outcome of an analysis: every surviving diagnostic, in the
/// order the passes produced them (allow-level findings are dropped
/// before the report is built).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Surviving diagnostics (warn and deny level).
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Builds a report from raw `(code, message)` findings, applying
    /// `config`'s severities and dropping allow-level findings.
    pub fn from_findings(
        findings: Vec<(LintCode, String)>,
        config: &LintConfig,
    ) -> AnalysisReport {
        let diagnostics = findings
            .into_iter()
            .filter_map(|(code, message)| {
                let severity = config.severity(code);
                (severity != Severity::Allow).then_some(Diagnostic { code, severity, message })
            })
            .collect();
        AnalysisReport { diagnostics }
    }

    /// Number of deny-level diagnostics.
    pub fn deny_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Deny).count()
    }

    /// Number of warn-level diagnostics.
    pub fn warn_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warn).count()
    }

    /// `true` when no diagnostic is deny-level (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.deny_count() == 0
    }

    /// `true` when `code` fired at least once.
    pub fn has(&self, code: LintCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Renders every diagnostic, one per line.
    pub fn render(&self) -> String {
        let lines: Vec<String> =
            self.diagnostics.iter().map(|d| d.to_string()).collect();
        lines.join("\n")
    }

    /// Renders only the deny-level diagnostics, one per line.
    pub fn render_denied(&self) -> String {
        let lines: Vec<String> = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .map(|d| d.to_string())
            .collect();
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_ordered() {
        let ids: Vec<&str> = LintCode::all().iter().map(|c| c.id()).collect();
        assert_eq!(
            ids,
            [
                "RS-W001", "RS-W002", "RS-W003", "RS-W004", "RS-W005", "RS-W006",
                "RS-W007", "RS-W008", "RS-W009", "RS-W010"
            ]
        );
    }

    #[test]
    fn parse_roundtrips_every_code() {
        for &code in LintCode::all() {
            assert_eq!(LintCode::parse(code.id()).unwrap(), code);
            // Case-insensitive, whitespace-tolerant.
            assert_eq!(
                LintCode::parse(&format!(" {} ", code.id().to_lowercase())).unwrap(),
                code
            );
        }
    }

    #[test]
    fn parse_unknown_code_lists_all_known_codes() {
        let err = LintCode::parse("RS-W099").unwrap_err();
        let text = err.to_string();
        for &code in LintCode::all() {
            assert!(text.contains(code.id()), "missing {} in {text}", code.id());
        }
    }

    #[test]
    fn parse_unknown_code_suggests_nearest() {
        let err = LintCode::parse("RS-W099").unwrap_err();
        assert!(
            err.to_string().contains("did you mean RS-W009?"),
            "{err}"
        );
        // A typo one edit from RS-W001.
        let err = LintCode::parse("RS-V001").unwrap_err();
        assert!(
            err.to_string().contains("did you mean RS-W001?"),
            "{err}"
        );
        // Garbage far from every code gets no suggestion.
        let err = LintCode::parse("bananas").unwrap_err();
        assert!(!err.to_string().contains("did you mean"), "{err}");
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("RS-W099", "RS-W009"), 1);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn new_codes_have_rationales_and_warn_defaults() {
        for code in [
            LintCode::StaticInterference,
            LintCode::UnvalidatedRead,
            LintCode::StaticSerializable,
        ] {
            assert_eq!(code.default_severity(), Severity::Warn);
            assert!(!code.rationale().is_empty());
        }
        // Every code has a nonempty rationale for `analyze --explain`.
        for &code in LintCode::all() {
            assert!(!code.rationale().is_empty(), "{} lacks a rationale", code.id());
        }
    }

    #[test]
    fn overrides_accept_new_codes_and_conflicts_fail_closed() {
        let mut config = LintConfig::default();
        config
            .apply_overrides("RS-W010", "RS-W008", "RS-W009")
            .unwrap();
        assert_eq!(config.severity(LintCode::StaticSerializable), Severity::Deny);
        assert_eq!(config.severity(LintCode::StaticInterference), Severity::Warn);
        assert_eq!(config.severity(LintCode::UnvalidatedRead), Severity::Allow);

        let err = LintConfig::default()
            .apply_overrides("RS-W009", "", "RS-W009")
            .unwrap_err();
        assert!(err.to_string().contains("two severities"), "{err}");
    }

    #[test]
    fn overrides_apply_and_conflict_fails_closed() {
        let mut config = LintConfig::default();
        config.apply_overrides("RS-W003", "", "RS-W002").unwrap();
        assert_eq!(config.severity(LintCode::Footprint), Severity::Deny);
        assert_eq!(config.severity(LintCode::AbaFreedom), Severity::Allow);
        // Untouched codes keep their defaults.
        assert_eq!(config.severity(LintCode::SingleWriter), Severity::Deny);

        let err = LintConfig::default()
            .apply_overrides("RS-W001", "", "RS-W001")
            .unwrap_err();
        assert!(err.to_string().contains("two severities"), "{err}");
    }

    #[test]
    fn display_matches_rustc_style() {
        let d = Diagnostic {
            code: LintCode::SingleWriter,
            severity: Severity::Deny,
            message: "p0 writes component 1 owned by p1".to_string(),
        };
        assert_eq!(
            d.to_string(),
            "error[RS-W001]: p0 writes component 1 owned by p1"
        );
        let w = Diagnostic {
            code: LintCode::Footprint,
            severity: Severity::Warn,
            message: "m too large".to_string(),
        };
        assert_eq!(w.to_string(), "warning[RS-W003]: m too large");
    }

    #[test]
    fn report_drops_allowed_findings() {
        let mut config = LintConfig::default();
        config.set(LintCode::Footprint, Severity::Allow);
        let report = AnalysisReport::from_findings(
            vec![
                (LintCode::Footprint, "dropped".to_string()),
                (LintCode::SingleWriter, "kept".to_string()),
            ],
            &config,
        );
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.deny_count(), 1);
        assert!(!report.is_clean());
        assert!(report.has(LintCode::SingleWriter));
        assert!(!report.has(LintCode::Footprint));
    }
}
