//! Happens-before runtime core: vector clocks, the step-commutation
//! (independence) oracle, and an incrementally maintained per-execution
//! happens-before summary.
//!
//! This module is the shared dependence machinery behind two layers
//! that used to be separate:
//!
//! * the **analyzer's Pass 2** trace checker
//!   ([`crate::analyze::hb`]), which replays recorded traces and flags
//!   causally unordered mutations (RS-W006) — it now delegates its
//!   vector-clock bookkeeping to [`HbState`];
//! * the **explorer's** dynamic partial-order reduction
//!   ([`crate::explore`]), which uses [`independent`] to recognise that
//!   two interleavings differing only in commuting adjacent steps reach
//!   the same configuration, and prunes the redundant fork.
//!
//! # Why the dependence relation is exact here
//!
//! Processes are deterministic state machines whose next base-object
//! operation is fully revealed by [`crate::process::Process::poised`],
//! so at every reachable configuration the explorer knows *precisely*
//! which operation each process would perform next. Two steps by
//! distinct processes commute iff swapping them leaves every object
//! state and both responses unchanged; for this crate's object zoo that
//! is a closed-form property of the operation pair (see
//! [`independent`]), with no approximation and no runtime clock
//! comparison needed. Vector clocks remain the right tool for *audit*
//! (checking a foreign trace whose steps are already fixed), which is
//! what [`HbState`] provides.

use crate::object::{ObjectId, Operation};
use crate::process::ProcessId;
use crate::system::Event;
use std::collections::HashMap;

/// A vector clock over `n` processes.
pub type VClock = Vec<u64>;

/// `a ≤ b` pointwise.
pub fn leq(a: &VClock, b: &VClock) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

/// Neither `a ≤ b` nor `b ≤ a`: the clocks are causally unordered.
pub fn concurrent(a: &VClock, b: &VClock) -> bool {
    !leq(a, b) && !leq(b, a)
}

/// Pointwise maximum, stored into `into`.
pub fn join(into: &mut VClock, from: &VClock) {
    for (x, y) in into.iter_mut().zip(from) {
        *x = (*x).max(*y);
    }
}

/// The component a mutation writes (mirrors the runtime's ownership
/// check): `Update`/`WriteMax` name their component, every other
/// mutation acts on component 0. Reads and scans mutate nothing.
pub fn mutated_component(op: &Operation) -> Option<usize> {
    if !op.is_mutation() {
        return None;
    }
    Some(match op {
        Operation::Update { component, .. } | Operation::WriteMax { component, .. } => *component,
        _ => 0,
    })
}

/// Do two operations, performed by *distinct* processes, commute?
///
/// `independent(a, b)` returns `true` only when, from **every** object
/// state, applying `a` then `b` or `b` then `a` yields identical object
/// states and identical responses to both callers — so the two
/// execution orders reach indistinguishable configurations. The
/// relation is exact for this crate's object families:
///
/// * operations on **different objects** touch disjoint state;
/// * two **non-mutating** operations (`Read`, `Scan`) change nothing;
/// * `Update`s of **different components** of one snapshot write
///   disjoint slots and both return `Ack` (the paper's single-writer
///   discipline makes this the common case: each process updates only
///   its own component);
/// * `Update`s of the same component with the **same value** are
///   idempotent in either order;
/// * `WriteMax` pairs always commute — `max` is associative and
///   commutative and the response is unconditionally `Ack` (§5.2);
/// * `Write`s of the same value to one register commute.
///
/// Everything else is dependent: a `Scan` racing an `Update` of the
/// same object observes the order, distinct same-slot writes make the
/// final state order-sensitive, and `FetchInc`/`Swap`/`Cas` return
/// order-revealing responses.
pub fn independent(a: &Operation, b: &Operation) -> bool {
    if a.object() != b.object() {
        return true;
    }
    if !a.is_mutation() && !b.is_mutation() {
        return true;
    }
    match (a, b) {
        (
            Operation::Update { component: ca, value: va, .. },
            Operation::Update { component: cb, value: vb, .. },
        ) => ca != cb || va == vb,
        (Operation::WriteMax { .. }, Operation::WriteMax { .. }) => true,
        (Operation::Write { value: va, .. }, Operation::Write { value: vb, .. }) => va == vb,
        _ => false,
    }
}

/// A set of unordered process pairs observed *dependent* by the
/// dynamic oracle: the explorer's soundness gate collects every
/// enabled pair whose poised operations fail [`independent`], and the
/// differential tests assert the set is a subset of the static
/// interference matrix's dependent pairs
/// ([`crate::analyze::InterferenceMatrix`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DependentPairs {
    pairs: std::collections::BTreeSet<(usize, usize)>,
}

impl DependentPairs {
    /// An empty set.
    pub fn new() -> Self {
        DependentPairs::default()
    }

    /// Records `{p, q}` (order-insensitive; self-pairs are ignored —
    /// dependence is only meaningful for distinct processes).
    pub fn record(&mut self, p: usize, q: usize) {
        if p != q {
            self.pairs.insert((p.min(q), p.max(q)));
        }
    }

    /// Is `{p, q}` recorded?
    pub fn contains(&self, p: usize, q: usize) -> bool {
        p != q && self.pairs.contains(&(p.min(q), p.max(q)))
    }

    /// Number of recorded pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates the pairs in `(min, max)` order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.pairs.iter().copied()
    }

    /// Observes one recorded trace: records every pair of *adjacent*
    /// distinct-process events whose operations are dependent (the
    /// trace's own order already witnesses these as truly concurrent
    /// neighbours).
    pub fn observe_trace<'a, I>(&mut self, events: I)
    where
        I: IntoIterator<Item = &'a Event>,
    {
        let mut prev: Option<&Event> = None;
        for event in events {
            if let Some(p) = prev {
                if p.pid != event.pid && !independent(&p.op, &event.op) {
                    self.record(p.pid.0, event.pid.0);
                }
            }
            prev = Some(event);
        }
    }
}

/// What one observed event revealed about the execution's causal order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HbObserved {
    /// The event is causally unremarkable.
    Clean,
    /// The event names a process the system does not have.
    BogusPid,
    /// A mutation of a component owned by another process.
    ForeignMutation {
        /// The declared owner.
        owner: ProcessId,
        /// The mutated component.
        component: usize,
    },
    /// Two causally unordered mutations of one owned component: this
    /// event races the recorded `writer`'s earlier mutation.
    RacingMutation {
        /// The author of the conflicting earlier mutation.
        writer: ProcessId,
        /// The contended component.
        component: usize,
    },
}

/// An incrementally maintained happens-before summary of one execution:
/// per-process vector clocks plus, per `(object, component)`, the clock
/// and author of the last observed mutation. Feeding events one at a
/// time through [`HbState::observe`] reproduces exactly the relation
/// the analyzer's batch Pass 2 derives over a whole recorded trace.
#[derive(Clone, PartialEq, Debug)]
pub struct HbState {
    clocks: Vec<VClock>,
    last_write: HashMap<(usize, usize), (VClock, usize)>,
}

impl HbState {
    /// An empty summary over `n` processes.
    pub fn new(n: usize) -> Self {
        HbState { clocks: vec![vec![0; n]; n], last_write: HashMap::new() }
    }

    /// The number of processes this summary tracks.
    pub fn processes(&self) -> usize {
        self.clocks.len()
    }

    /// Process `p`'s current vector clock.
    pub fn clock(&self, p: ProcessId) -> Option<&VClock> {
        self.clocks.get(p.0)
    }

    /// Advances the summary by one event. `owner_of` names the declared
    /// single writer of an `(object, component)` pair, if any; races
    /// are only flagged on owned components (mirroring the analyzer:
    /// un-owned components are multi-writer by design and ordered by
    /// the trace itself).
    pub fn observe(
        &mut self,
        event: &Event,
        owner_of: &dyn Fn(ObjectId, usize) -> Option<ProcessId>,
    ) -> HbObserved {
        let n = self.clocks.len();
        let p = event.pid.0;
        if p >= n {
            return HbObserved::BogusPid;
        }
        self.clocks[p][p] += 1;
        let obj = event.op.object();
        let mut outcome = HbObserved::Clean;
        if let Some(component) = mutated_component(&event.op) {
            if let Some(owner) = owner_of(obj, component) {
                if owner != event.pid {
                    outcome = HbObserved::ForeignMutation { owner, component };
                } else if let Some((write_clock, writer)) = self.last_write.get(&(obj.0, component))
                {
                    if *writer != p && concurrent(write_clock, &self.clocks[p]) {
                        outcome =
                            HbObserved::RacingMutation { writer: ProcessId(*writer), component };
                    }
                }
            }
            self.last_write.insert((obj.0, component), (self.clocks[p].clone(), p));
        } else {
            // A read or scan observes the writes it returns: join the
            // write clocks of every component it covers (reads-from
            // edges).
            let components: Vec<usize> = self
                .last_write
                .keys()
                .filter(|(o, _)| *o == obj.0)
                .map(|(_, c)| *c)
                .collect();
            for c in components {
                let (write_clock, _) = self.last_write[&(obj.0, c)].clone();
                join(&mut self.clocks[p], &write_clock);
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Response;
    use crate::value::Value;

    fn upd(pid: usize, component: usize, v: i64) -> Event {
        Event {
            pid: ProcessId(pid),
            op: Operation::Update { obj: ObjectId(0), component, value: Value::Int(v) },
            resp: Response::Ack,
        }
    }

    fn scan(pid: usize) -> Event {
        Event {
            pid: ProcessId(pid),
            op: Operation::Scan { obj: ObjectId(0) },
            resp: Response::View(vec![]),
        }
    }

    #[test]
    fn clock_order_and_join() {
        let a = vec![1, 0];
        let b = vec![1, 2];
        assert!(leq(&a, &b));
        assert!(!leq(&b, &a));
        assert!(!concurrent(&a, &b));
        let c = vec![0, 1];
        assert!(concurrent(&a, &c));
        let mut j = a.clone();
        join(&mut j, &c);
        assert_eq!(j, vec![1, 1]);
    }

    #[test]
    fn mutated_component_mirrors_runtime_ownership() {
        assert_eq!(
            mutated_component(&Operation::Update {
                obj: ObjectId(0),
                component: 3,
                value: Value::Int(1)
            }),
            Some(3)
        );
        assert_eq!(
            mutated_component(&Operation::Write { obj: ObjectId(0), value: Value::Int(1) }),
            Some(0)
        );
        assert_eq!(mutated_component(&Operation::Scan { obj: ObjectId(0) }), None);
        assert_eq!(mutated_component(&Operation::Read { obj: ObjectId(0) }), None);
    }

    #[test]
    fn independence_distinguishes_objects_and_components() {
        let upd = |obj: usize, component: usize, v: i64| Operation::Update {
            obj: ObjectId(obj),
            component,
            value: Value::Int(v),
        };
        // Different objects always commute.
        assert!(independent(&upd(0, 0, 1), &upd(1, 0, 2)));
        // Different components of one snapshot commute.
        assert!(independent(&upd(0, 0, 1), &upd(0, 1, 2)));
        // Same component, different values: order decides the winner.
        assert!(!independent(&upd(0, 0, 1), &upd(0, 0, 2)));
        // Same component, same value: idempotent in either order.
        assert!(independent(&upd(0, 0, 7), &upd(0, 0, 7)));
        // A scan races any update of the same object…
        assert!(!independent(&Operation::Scan { obj: ObjectId(0) }, &upd(0, 1, 2)));
        // …but not of another object, and two reads always commute.
        assert!(independent(&Operation::Scan { obj: ObjectId(1) }, &upd(0, 1, 2)));
        assert!(independent(
            &Operation::Scan { obj: ObjectId(0) },
            &Operation::Read { obj: ObjectId(0) }
        ));
    }

    #[test]
    fn writemax_always_commutes_with_writemax() {
        let wm = |component: usize, v: i64| Operation::WriteMax {
            obj: ObjectId(0),
            component,
            value: Value::Int(v),
        };
        assert!(independent(&wm(0, 1), &wm(0, 2)));
        assert!(independent(&wm(0, 1), &wm(1, 2)));
        // But a scan of the max-register still observes the order
        // relative to a not-yet-applied writemax? No: writemax/scan of
        // the same object are dependent (the scan sees the max so far).
        assert!(!independent(&Operation::Scan { obj: ObjectId(0) }, &wm(0, 2)));
    }

    #[test]
    fn order_revealing_primitives_are_dependent() {
        let fi = Operation::FetchInc { obj: ObjectId(2) };
        assert!(!independent(&fi, &fi));
        let sw = Operation::Swap { obj: ObjectId(2), value: Value::Int(1) };
        assert!(!independent(&sw, &sw));
        let cas = Operation::Cas {
            obj: ObjectId(2),
            expect: Value::Int(0),
            update: Value::Int(1),
        };
        assert!(!independent(&cas, &cas));
        // Distinct-value register writes are order-sensitive; equal
        // writes are not.
        let w = |v: i64| Operation::Write { obj: ObjectId(2), value: Value::Int(v) };
        assert!(!independent(&w(1), &w(2)));
        assert!(independent(&w(1), &w(1)));
    }

    #[test]
    fn dependent_pairs_normalize_and_deduplicate() {
        let mut pairs = DependentPairs::new();
        pairs.record(2, 0);
        pairs.record(0, 2);
        pairs.record(1, 1); // self-pair ignored
        assert_eq!(pairs.len(), 1);
        assert!(pairs.contains(0, 2));
        assert!(pairs.contains(2, 0));
        assert!(!pairs.contains(0, 1));
        assert_eq!(pairs.iter().collect::<Vec<_>>(), vec![(0, 2)]);
    }

    #[test]
    fn observe_trace_records_adjacent_dependent_neighbours() {
        // p0 updates slot 0, p1 updates slot 0 with a different value
        // (dependent), then p1 updates slot 1 and p0 updates slot 0
        // (independent: distinct components).
        let mut pairs = DependentPairs::new();
        pairs.observe_trace(&[upd(0, 0, 1), upd(1, 0, 2), upd(1, 1, 3), upd(0, 0, 4)]);
        assert!(pairs.contains(0, 1));
        assert_eq!(pairs.len(), 1);

        // Independent neighbours record nothing.
        let mut clean = DependentPairs::new();
        clean.observe_trace(&[upd(0, 0, 1), upd(1, 1, 2)]);
        assert!(clean.is_empty());
    }

    #[test]
    fn racing_owned_mutations_are_flagged() {
        let owner = |_: ObjectId, component: usize| {
            if component == 0 {
                Some(ProcessId(0))
            } else {
                None
            }
        };
        let mut hb = HbState::new(2);
        assert_eq!(hb.observe(&upd(0, 0, 1), &owner), HbObserved::Clean);
        // p1 mutating p0's component is a foreign mutation.
        assert_eq!(
            hb.observe(&upd(1, 0, 2), &owner),
            HbObserved::ForeignMutation { owner: ProcessId(0), component: 0 }
        );
        // Un-owned components never race.
        assert_eq!(hb.observe(&upd(1, 1, 2), &owner), HbObserved::Clean);
    }

    #[test]
    fn reads_from_edge_orders_the_handoff() {
        // p0 writes its owned slot; p1 scans (acquiring the reads-from
        // edge) — a later p0 write is then ordered, not racing, even
        // under an owner map that lets both write (audit scenario).
        let owner = |_: ObjectId, _: usize| Some(ProcessId(0));
        let mut hb = HbState::new(2);
        assert_eq!(hb.observe(&upd(0, 0, 1), &owner), HbObserved::Clean);
        assert_eq!(hb.observe(&scan(1), &owner), HbObserved::Clean);
        // p1's clock now dominates p0's write clock: a p1 mutation of
        // the same slot is foreign (ownership) but *not* unordered.
        let mut unordered = HbState::new(2);
        assert_eq!(unordered.observe(&upd(0, 0, 1), &|_, _| None), HbObserved::Clean);
        assert_eq!(unordered.observe(&upd(1, 0, 2), &|_, _| None), HbObserved::Clean);
    }

    #[test]
    fn racing_mutation_requires_concurrent_clocks() {
        // Two writers of one *shared* owned slot (owner map says p1 owns
        // it for the second write): concurrent clocks → race.
        let mut hb = HbState::new(2);
        let owner_is_writer = |pid: usize| move |_: ObjectId, _: usize| Some(ProcessId(pid));
        assert_eq!(hb.observe(&upd(0, 0, 1), &owner_is_writer(0)), HbObserved::Clean);
        assert_eq!(
            hb.observe(&upd(1, 0, 2), &owner_is_writer(1)),
            HbObserved::RacingMutation { writer: ProcessId(0), component: 0 }
        );
        // With a reads-from edge in between, the same pair is ordered.
        let mut hb = HbState::new(2);
        assert_eq!(hb.observe(&upd(0, 0, 1), &owner_is_writer(0)), HbObserved::Clean);
        assert_eq!(hb.observe(&scan(1), &owner_is_writer(0)), HbObserved::Clean);
        assert_eq!(hb.observe(&upd(1, 0, 2), &owner_is_writer(1)), HbObserved::Clean);
    }
}
