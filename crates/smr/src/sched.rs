//! Adversarial schedulers.
//!
//! A scheduler decides which process takes the next step. The paper's
//! progress conditions are quantified over schedulers:
//!
//! * wait-freedom — every process terminates under *every* scheduler;
//! * x-obstruction-freedom — processes terminate under schedulers that
//!   eventually run only a set of ≤ x processes ([`Obstruction`]);
//! * obstruction-freedom — the x = 1 case ([`Solo`] from any point).
//!
//! Schedulers only pick among non-terminated processes; returning `None`
//! ends the run.

use crate::process::ProcessId;
use crate::system::System;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Picks the process to take the next step, or `None` to stop.
pub trait Scheduler {
    /// Chooses the next process given the current configuration.
    fn next(&mut self, system: &System) -> Option<ProcessId>;
}

fn live_processes(system: &System) -> Vec<ProcessId> {
    (0..system.process_count())
        .map(ProcessId)
        .filter(|&p| !system.is_terminated(p))
        .collect()
}

/// Cycles through live processes in index order.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// Creates a round-robin scheduler starting at process 0.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Scheduler for RoundRobin {
    fn next(&mut self, system: &System) -> Option<ProcessId> {
        let n = system.process_count();
        for _ in 0..n {
            let pid = ProcessId(self.cursor % n);
            self.cursor += 1;
            if !system.is_terminated(pid) {
                return Some(pid);
            }
        }
        None
    }
}

/// Uniformly random live process each step (a seedable oblivious
/// adversary).
#[derive(Clone, Debug)]
pub struct Random {
    rng: StdRng,
}

impl Random {
    /// Creates a random scheduler from a seed (runs are reproducible).
    pub fn seeded(seed: u64) -> Self {
        Random { rng: StdRng::seed_from_u64(seed) }
    }
}

impl Scheduler for Random {
    fn next(&mut self, system: &System) -> Option<ProcessId> {
        let live = live_processes(system);
        if live.is_empty() {
            return None;
        }
        Some(live[self.rng.gen_range(0..live.len())])
    }
}

/// Runs a single process only (a solo execution).
#[derive(Clone, Debug)]
pub struct Solo {
    pid: ProcessId,
}

impl Solo {
    /// Creates a scheduler that only ever runs `pid`.
    pub fn new(pid: ProcessId) -> Self {
        Solo { pid }
    }
}

impl Scheduler for Solo {
    fn next(&mut self, system: &System) -> Option<ProcessId> {
        if system.is_terminated(self.pid) {
            None
        } else {
            Some(self.pid)
        }
    }
}

/// Replays a fixed schedule (a sequence of process ids), then stops.
/// Terminated processes are skipped.
#[derive(Clone, Debug)]
pub struct Fixed {
    schedule: Vec<ProcessId>,
    cursor: usize,
}

impl Fixed {
    /// Creates a scheduler that replays `schedule` in order.
    pub fn new(schedule: Vec<ProcessId>) -> Self {
        Fixed { schedule, cursor: 0 }
    }

    /// Creates a scheduler from raw process indices, as decoded from a
    /// replay bundle's decision trace.
    pub fn from_indices(indices: &[usize]) -> Self {
        Fixed::new(indices.iter().copied().map(ProcessId).collect())
    }
}

impl Scheduler for Fixed {
    fn next(&mut self, system: &System) -> Option<ProcessId> {
        while self.cursor < self.schedule.len() {
            let pid = self.schedule[self.cursor];
            self.cursor += 1;
            if !system.is_terminated(pid) {
                return Some(pid);
            }
        }
        let _ = system;
        None
    }
}

/// Round-robin with a per-turn quantum: each live process takes
/// `quantum` consecutive steps before the next one runs. Quantum 1 is
/// step-level alternation; quantum 2 is operation-level alternation for
/// scan/update protocols — the distinction that separates protocols
/// that converge under round-robin from those that livelock (see the
/// contrarian protocol).
#[derive(Clone, Debug)]
pub struct Quantum {
    quantum: usize,
    cursor: usize,
    used: usize,
}

impl Quantum {
    /// Creates a quantum-round-robin scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `quantum == 0`.
    pub fn new(quantum: usize) -> Self {
        assert!(quantum >= 1);
        Quantum { quantum, cursor: 0, used: 0 }
    }
}

impl Scheduler for Quantum {
    fn next(&mut self, system: &System) -> Option<ProcessId> {
        let n = system.process_count();
        for _ in 0..=n {
            let pid = ProcessId(self.cursor % n);
            if !system.is_terminated(pid) && self.used < self.quantum {
                self.used += 1;
                return Some(pid);
            }
            self.cursor += 1;
            self.used = 0;
        }
        None
    }
}

/// An x-obstruction adversary: interleaves randomly for a while, then
/// repeatedly picks a random set of at most `x` live processes and runs
/// only them for a burst. Under this scheduler, an x-obstruction-free
/// protocol must drive the burst set to termination once bursts are long
/// enough.
#[derive(Clone, Debug)]
pub struct Obstruction {
    rng: StdRng,
    x: usize,
    chaos_steps: usize,
    burst_len: usize,
    current_burst: Vec<ProcessId>,
    burst_remaining: usize,
    step: usize,
}

impl Obstruction {
    /// Creates an x-obstruction adversary.
    ///
    /// * `x` — maximum size of the eventually-isolated set. `0` is
    ///   clamped to `1` (an empty obstruction set could schedule
    ///   nothing; the weakest meaningful adversary runs solo bursts).
    /// * `chaos_steps` — how many fully random steps precede the bursts.
    /// * `burst_len` — how many steps each isolated burst lasts.
    pub fn new(x: usize, chaos_steps: usize, burst_len: usize, seed: u64) -> Self {
        let x = x.max(1);
        Obstruction {
            rng: StdRng::seed_from_u64(seed),
            x,
            chaos_steps,
            burst_len,
            current_burst: Vec::new(),
            burst_remaining: 0,
            step: 0,
        }
    }
}

impl Scheduler for Obstruction {
    fn next(&mut self, system: &System) -> Option<ProcessId> {
        let live = live_processes(system);
        if live.is_empty() {
            return None;
        }
        self.step += 1;
        if self.step <= self.chaos_steps {
            return Some(live[self.rng.gen_range(0..live.len())]);
        }
        // Burst phase: refresh the burst set if exhausted or dead.
        self.current_burst.retain(|p| live.contains(p));
        if self.burst_remaining == 0 || self.current_burst.is_empty() {
            let mut pool = live.clone();
            self.current_burst.clear();
            for _ in 0..self.x.min(pool.len()) {
                let i = self.rng.gen_range(0..pool.len());
                self.current_burst.push(pool.swap_remove(i));
            }
            self.burst_remaining = self.burst_len;
        }
        self.burst_remaining -= 1;
        let i = self.rng.gen_range(0..self.current_burst.len());
        Some(self.current_burst[i])
    }
}

/// A crash adversary: behaves like [`Random`], but permanently stops
/// scheduling up to `max_crashes` processes at random points. Crashed
/// processes simply take no more steps (the paper's crash model).
#[derive(Clone, Debug)]
pub struct Crash {
    rng: StdRng,
    crashed: Vec<ProcessId>,
    /// `(victim, global step at crash)` in crash order — the replay
    /// coordinates of each crash.
    crash_log: Vec<(ProcessId, usize)>,
    max_crashes: usize,
    crash_probability: f64,
}

impl Crash {
    /// Creates a crash adversary that crashes at most `max_crashes`
    /// processes, each step crashing a random live process with
    /// probability `crash_probability`.
    pub fn new(max_crashes: usize, crash_probability: f64, seed: u64) -> Self {
        Crash {
            rng: StdRng::seed_from_u64(seed),
            crashed: Vec::new(),
            crash_log: Vec::new(),
            max_crashes,
            crash_probability,
        }
    }

    /// Processes crashed so far.
    pub fn crashed(&self) -> &[ProcessId] {
        &self.crashed
    }

    /// Each crash as `(victim, global step count at the crash)`, in
    /// crash order. A correct crash model means the victim has no trace
    /// events at or after that index.
    pub fn crash_log(&self) -> &[(ProcessId, usize)] {
        &self.crash_log
    }
}

impl Scheduler for Crash {
    fn next(&mut self, system: &System) -> Option<ProcessId> {
        let live: Vec<ProcessId> = live_processes(system)
            .into_iter()
            .filter(|p| !self.crashed.contains(p))
            .collect();
        if live.is_empty() {
            return None;
        }
        if self.crashed.len() < self.max_crashes
            && live.len() > 1
            && self.rng.gen_bool(self.crash_probability)
        {
            let victim = live[self.rng.gen_range(0..live.len())];
            self.crashed.push(victim);
            self.crash_log.push((victim, system.trace().len()));
            let survivors: Vec<_> =
                live.into_iter().filter(|p| *p != victim).collect();
            return Some(survivors[self.rng.gen_range(0..survivors.len())]);
        }
        Some(live[self.rng.gen_range(0..live.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Object, ObjectId};
    use crate::process::{ProtocolStep, SnapshotProcess, SnapshotProtocol};
    use crate::value::Value;

    /// Terminates after `n` updates.
    #[derive(Clone, Debug)]
    struct Stepper {
        n: usize,
    }

    impl SnapshotProtocol for Stepper {
        fn on_scan(&mut self, _view: &[Value]) -> ProtocolStep {
            if self.n == 0 {
                ProtocolStep::Output(Value::Int(0))
            } else {
                self.n -= 1;
                ProtocolStep::Update(0, Value::Int(self.n as i64))
            }
        }
        fn components(&self) -> usize {
            1
        }
    }

    fn system(n_procs: usize, steps: usize) -> System {
        let procs = (0..n_procs)
            .map(|_| {
                Box::new(SnapshotProcess::new(Stepper { n: steps }, ObjectId(0)))
                    as Box<dyn crate::process::Process>
            })
            .collect();
        System::new(vec![Object::snapshot(1)], procs)
    }

    #[test]
    fn round_robin_completes() {
        let mut sys = system(3, 4);
        sys.run(&mut RoundRobin::new(), 10_000).unwrap();
        assert!(sys.all_terminated());
    }

    #[test]
    fn random_is_reproducible() {
        let mut a = system(3, 4);
        let mut b = system(3, 4);
        a.run(&mut Random::seeded(42), 10_000).unwrap();
        b.run(&mut Random::seeded(42), 10_000).unwrap();
        assert_eq!(a.trace(), b.trace());
    }

    #[test]
    fn solo_runs_one_process() {
        let mut sys = system(3, 4);
        sys.run(&mut Solo::new(ProcessId(1)), 10_000).unwrap();
        assert!(sys.is_terminated(ProcessId(1)));
        assert!(!sys.is_terminated(ProcessId(0)));
        assert!(sys.trace().iter().all(|e| e.pid == ProcessId(1)));
    }

    #[test]
    fn fixed_replays_schedule() {
        let mut sys = system(2, 4);
        let schedule = vec![ProcessId(0), ProcessId(0), ProcessId(1)];
        sys.run(&mut Fixed::new(schedule.clone()), 10_000).unwrap();
        let pids: Vec<ProcessId> = sys.trace().iter().map(|e| e.pid).collect();
        assert_eq!(pids, schedule);
    }

    #[test]
    fn quantum_scheduler_gives_consecutive_steps() {
        let mut sys = system(2, 3);
        sys.run(&mut Quantum::new(2), 10_000).unwrap();
        assert!(sys.all_terminated());
        // Steps come in runs of 2 per process (except terminal tails).
        let pids: Vec<usize> = sys.trace().iter().map(|e| e.pid.0).collect();
        let mut i = 0;
        while i + 1 < pids.len() {
            if pids[i] == pids[i + 1] {
                i += 2;
            } else {
                // A run of length 1 only happens when the process
                // terminated mid-quantum.
                i += 1;
            }
        }
    }

    #[test]
    fn quantum_one_equals_round_robin() {
        let mut a = system(3, 4);
        let mut b = system(3, 4);
        a.run(&mut Quantum::new(1), 10_000).unwrap();
        b.run(&mut RoundRobin::new(), 10_000).unwrap();
        assert_eq!(a.trace(), b.trace());
    }

    #[test]
    fn obstruction_eventually_isolates() {
        let mut sys = system(4, 3);
        let mut sched = Obstruction::new(2, 10, 50, 7);
        sys.run(&mut sched, 100_000).unwrap();
        assert!(sys.all_terminated());
    }

    #[test]
    fn quantum_larger_than_run_finishes_each_process_in_turn() {
        // Quantum far above any process's total step count degenerates
        // to run-to-completion, one process at a time, no panic.
        let mut sys = system(3, 2);
        sys.run(&mut Quantum::new(1_000_000), 10_000).unwrap();
        assert!(sys.all_terminated());
        let pids: Vec<usize> = sys.trace().iter().map(|e| e.pid.0).collect();
        // Each process's steps form one contiguous block.
        let mut blocks = vec![pids[0]];
        for w in pids.windows(2) {
            if w[1] != w[0] {
                blocks.push(w[1]);
            }
        }
        assert_eq!(blocks, vec![0, 1, 2]);
    }

    #[test]
    fn obstruction_with_x_zero_clamps_to_solo_bursts() {
        // x = 0 would mean an empty isolated set; it is clamped to 1
        // instead of panicking, and the schedule still terminates the
        // system.
        let mut sys = system(3, 3);
        let mut sched = Obstruction::new(0, 5, 50, 11);
        sys.run(&mut sched, 100_000).unwrap();
        assert!(sys.all_terminated());
    }

    #[test]
    fn obstruction_single_process_system() {
        // One process: chaos and bursts must both keep picking it.
        let mut sys = system(1, 4);
        let mut sched = Obstruction::new(2, 3, 10, 5);
        sys.run(&mut sched, 10_000).unwrap();
        assert!(sys.all_terminated());
    }

    #[test]
    fn crash_with_zero_budget_never_crashes() {
        // max_crashes = 0 even with crash probability 1: the adversary
        // is just a random scheduler and every process finishes.
        let mut sys = system(4, 3);
        let mut sched = Crash::new(0, 1.0, 9);
        sys.run(&mut sched, 100_000).unwrap();
        assert!(sys.all_terminated());
        assert!(sched.crashed().is_empty());
    }

    #[test]
    fn crash_adversary_still_lets_survivors_finish() {
        let mut sys = system(3, 4);
        let mut sched = Crash::new(1, 0.1, 3);
        sys.run(&mut sched, 100_000).unwrap();
        let done = (0..3)
            .filter(|&i| sys.is_terminated(ProcessId(i)))
            .count();
        assert!(done >= 2, "at most one process may be crashed");
    }

    #[test]
    fn crashed_processes_never_step_again() {
        // Run many seeds; for every crash recorded in the crash log, the
        // victim must have no trace events at or after the crash point —
        // the crash-stopped model of paper §2.
        let mut crashes_seen = 0;
        for seed in 0..32 {
            let mut sys = system(4, 5);
            let mut sched = Crash::new(2, 0.2, seed);
            sys.run(&mut sched, 100_000).unwrap();
            for &(victim, at) in sched.crash_log() {
                crashes_seen += 1;
                let late = sys
                    .trace()
                    .events_from(at)
                    .filter(|e| e.pid == victim)
                    .count();
                assert_eq!(
                    late, 0,
                    "seed {seed}: {victim:?} stepped after crashing at {at}"
                );
            }
        }
        assert!(crashes_seen > 0, "the sweep never exercised a crash");
    }

    #[test]
    fn crash_budget_is_respected() {
        for seed in 0..16 {
            let mut sys = system(5, 4);
            let mut sched = Crash::new(2, 1.0, seed);
            sys.run(&mut sched, 100_000).unwrap();
            assert!(sched.crashed().len() <= 2, "seed {seed} exceeded budget");
            assert_eq!(sched.crashed().len(), sched.crash_log().len());
            // Even a maximally aggressive adversary leaves survivors
            // running: every non-crashed process terminates.
            for i in 0..5 {
                let p = ProcessId(i);
                if !sched.crashed().contains(&p) {
                    assert!(sys.is_terminated(p), "seed {seed}: survivor {p:?} stuck");
                }
            }
        }
    }

    #[test]
    fn crash_set_is_a_deterministic_function_of_the_seed() {
        let run = |seed: u64| {
            let mut sys = system(4, 5);
            let mut sched = Crash::new(2, 0.3, seed);
            sys.run(&mut sched, 100_000).unwrap();
            (sched.crash_log().to_vec(), sys.trace().to_vec())
        };
        for seed in [0, 1, 7, 42] {
            let (log_a, trace_a) = run(seed);
            let (log_b, trace_b) = run(seed);
            assert_eq!(log_a, log_b, "crash log differs for seed {seed}");
            assert_eq!(trace_a, trace_b, "trace differs for seed {seed}");
        }
    }
}
