//! ddmin-style counterexample shrinking.
//!
//! A violation found by the explorer or a fault campaign is a full
//! schedule — potentially thousands of scheduling decisions — plus the
//! fault plan in force. Almost none of it matters: "Simple Executions
//! of Snapshot Implementations" (Amram, Mizrahi, Weiss) shows every
//! snapshot counterexample has a *simple* equivalent, and this module
//! is the executable version of that claim. A [`Counterexample`]
//! captures the run as an explicit decision sequence (replayable with
//! [`crate::sched::Fixed`] under a [`FaultScheduler`]); [`shrink`]
//! minimises it with Zeller–Hildebrandt delta debugging (ddmin) applied
//! jointly to the fault list and the decision sequence, keeping a
//! candidate iff the *violation fingerprint* — an FNV-1a hash of the
//! violation message — still reproduces.
//!
//! Guarantees:
//!
//! * the result is never larger than the input (candidates only ever
//!   remove elements);
//! * the shrink loop runs the two ddmin passes to a joint fixpoint, so
//!   within the candidate budget the result is 1-minimal: removing any
//!   single decision or fault loses the violation, and a second
//!   [`shrink`] call is a no-op (idempotence);
//! * every candidate evaluation is a deterministic replay — same
//!   factory, same decisions, same plan → same outcome — so shrinking
//!   is itself reproducible.

use crate::campaign::SchedulerSpec;
use crate::fault::{Fault, FaultPlan, FaultScheduler};
use crate::fingerprint::fingerprint;
use crate::process::ProcessId;
use crate::sched::Fixed;
use crate::system::System;

/// A replayable counterexample: the schedule as an explicit decision
/// sequence plus the fault plan that was in force. Replaying the
/// decisions with [`Fixed`] under a [`FaultScheduler`] carrying `plan`
/// reproduces the run exactly — every scheduler only picks live
/// processes, so the recorded trace pids *are* the decision sequence
/// and the fault triggers (step counts, decision clock, trace cursor)
/// line up with the original run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Counterexample {
    /// The scheduling decisions, in order.
    pub decisions: Vec<ProcessId>,
    /// The fault plan in force.
    pub plan: FaultPlan,
}

impl Counterexample {
    /// A counterexample with no faults (e.g. an explorer violation,
    /// which is already a pure decision sequence).
    pub fn faultless(decisions: Vec<ProcessId>) -> Self {
        Counterexample { decisions, plan: FaultPlan::none() }
    }

    /// Total size: decisions plus planned faults — the quantity ddmin
    /// minimises.
    pub fn size(&self) -> usize {
        self.decisions.len() + self.plan.faults.len()
    }
}

/// A check evaluated on the final configuration of a replay, given the
/// processes the plan crashed; returns a description to flag a
/// violation. (Plain campaign checks ignore the crashed set.)
pub type CexCheck<'a> = &'a dyn Fn(&System, &[ProcessId]) -> Option<String>;

/// Outcome of deterministically replaying a [`Counterexample`].
#[derive(Clone, Debug)]
pub struct CexOutcome {
    /// Check failure on the final configuration, if any.
    pub violation: Option<String>,
    /// Steps actually executed.
    pub steps: usize,
    /// Processes the plan crashed during the replay.
    pub crashed: Vec<ProcessId>,
}

impl CexOutcome {
    /// The violation fingerprint: FNV-1a of the violation message.
    /// `None` when the replay did not violate. The fingerprint hashes
    /// the *message only* — not the schedule — so a shorter schedule
    /// producing the same violation matches.
    pub fn fingerprint(&self) -> Option<u64> {
        self.violation.as_deref().map(fingerprint)
    }
}

/// Deterministically replays `cex` on a fresh system from `factory`.
/// Runtime errors surface as a `None` violation (an erroring candidate
/// never matches a violation fingerprint).
pub fn execute(
    factory: &dyn Fn() -> System,
    cex: &Counterexample,
    check: CexCheck,
) -> CexOutcome {
    let mut system = factory();
    let mut sched = FaultScheduler::new(
        Box::new(Fixed::new(cex.decisions.clone())),
        cex.plan.clone(),
    );
    let steps = match system.run(&mut sched, cex.decisions.len()) {
        Ok(steps) => steps,
        Err(_) => {
            return CexOutcome {
                violation: None,
                steps: 0,
                crashed: sched.crashed().to_vec(),
            }
        }
    };
    CexOutcome {
        violation: check(&system, sched.crashed()),
        steps,
        crashed: sched.crashed().to_vec(),
    }
}

/// Captures a replayable counterexample from a seeded scheduler run:
/// executes `(spec, seed, plan)` for up to `budget` steps, and if
/// `check` flags the final configuration, re-derives the run as an
/// explicit decision sequence and confirms the [`Fixed`] replay
/// reproduces the same violation fingerprint.
///
/// Returns `None` when the run does not violate (or, defensively, if
/// the decision-sequence replay fails to reproduce it).
pub fn capture(
    spec: &SchedulerSpec,
    seed: u64,
    budget: usize,
    plan: &FaultPlan,
    factory: &dyn Fn(u64) -> System,
    check: CexCheck,
) -> Option<(Counterexample, CexOutcome)> {
    let mut system = factory(seed);
    let mut sched = FaultScheduler::new(spec.build(seed), plan.clone());
    system.run(&mut sched, budget).ok()?;
    let violation = check(&system, sched.crashed())?;
    let decisions: Vec<ProcessId> = system.trace().iter().map(|e| e.pid).collect();
    let cex = Counterexample { decisions, plan: plan.clone() };
    let outcome = execute(&|| factory(seed), &cex, check);
    (outcome.fingerprint() == Some(fingerprint(&violation)))
        .then_some((cex, outcome))
}

/// How a [`shrink`] call went.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShrinkReport {
    /// Decision count before shrinking.
    pub original_decisions: usize,
    /// Decision count after shrinking.
    pub shrunk_decisions: usize,
    /// Planned-fault count before shrinking.
    pub original_faults: usize,
    /// Planned-fault count after shrinking.
    pub shrunk_faults: usize,
    /// The preserved violation fingerprint (`None` when the input was
    /// not a violation, in which case nothing was shrunk).
    pub fingerprint: Option<u64>,
    /// Replay candidates evaluated.
    pub candidates_tried: usize,
    /// Fault-pass + decision-pass rounds until the joint fixpoint.
    pub passes: usize,
    /// The candidate budget ran out before the fixpoint: the result is
    /// still a valid (and no larger) counterexample, but may not be
    /// 1-minimal.
    pub truncated: bool,
}

impl ShrinkReport {
    /// Human-readable shrink ratio, e.g. `"412 -> 7 decisions"`.
    pub fn ratio(&self) -> String {
        format!(
            "{} -> {} decisions, {} -> {} faults",
            self.original_decisions,
            self.shrunk_decisions,
            self.original_faults,
            self.shrunk_faults
        )
    }
}

/// Default cap on replay candidates per [`shrink`] call.
pub const DEFAULT_CANDIDATE_BUDGET: usize = 10_000;

/// Minimises `cex` with ddmin over the joint (fault list, decision
/// sequence) space: alternately delta-debugs the planned faults and the
/// decisions until neither pass removes anything, keeping a candidate
/// iff the violation fingerprint of the input still reproduces. See the
/// module docs for the guarantees. Uses
/// [`DEFAULT_CANDIDATE_BUDGET`]; [`shrink_with`] takes an explicit cap.
pub fn shrink(
    cex: &Counterexample,
    factory: &dyn Fn() -> System,
    check: CexCheck,
) -> (Counterexample, ShrinkReport) {
    shrink_with(cex, factory, check, DEFAULT_CANDIDATE_BUDGET)
}

/// [`shrink`] with an explicit candidate budget.
pub fn shrink_with(
    cex: &Counterexample,
    factory: &dyn Fn() -> System,
    check: CexCheck,
    candidate_budget: usize,
) -> (Counterexample, ShrinkReport) {
    let mut report = ShrinkReport {
        original_decisions: cex.decisions.len(),
        shrunk_decisions: cex.decisions.len(),
        original_faults: cex.plan.faults.len(),
        shrunk_faults: cex.plan.faults.len(),
        fingerprint: None,
        candidates_tried: 0,
        passes: 0,
        truncated: false,
    };
    let Some(target) = execute(factory, cex, check).fingerprint() else {
        // Not a violation: nothing to preserve, nothing to shrink.
        return (cex.clone(), report);
    };
    report.fingerprint = Some(target);

    let mut tried = 0usize;
    let mut current = cex.clone();
    let reproduces = |decisions: &[ProcessId], faults: &[Fault]| -> bool {
        let candidate = Counterexample {
            decisions: decisions.to_vec(),
            plan: FaultPlan { faults: faults.to_vec() },
        };
        execute(factory, &candidate, check).fingerprint() == Some(target)
    };

    // Joint fixpoint: each pass delta-debugs the fault list (against
    // the current decisions), then the decision sequence (against the
    // current faults). Removing a fault can unlock decision removals
    // and vice versa, so iterate until neither side shrinks.
    loop {
        report.passes += 1;
        let before = current.size();
        let faults = ddmin(
            &current.plan.faults,
            &|faults| reproduces(&current.decisions, faults),
            &mut tried,
            candidate_budget,
        );
        current.plan = FaultPlan { faults };
        let decisions = ddmin(
            &current.decisions,
            &|decisions| reproduces(decisions, &current.plan.faults),
            &mut tried,
            candidate_budget,
        );
        current.decisions = decisions;
        if current.size() == before || tried >= candidate_budget {
            break;
        }
    }
    report.shrunk_decisions = current.decisions.len();
    report.shrunk_faults = current.plan.faults.len();
    report.candidates_tried = tried;
    report.truncated = tried >= candidate_budget;
    (current, report)
}

/// One ddmin pass over `items`: returns a subsequence on which `test`
/// still holds, 1-minimal with respect to single-element removal when
/// the budget allows. `test` is never called on the input itself (the
/// caller has already established it holds). `tried` is incremented
/// once per candidate evaluated; evaluation stops at `budget`.
fn ddmin<T: Clone>(
    items: &[T],
    test: &dyn Fn(&[T]) -> bool,
    tried: &mut usize,
    budget: usize,
) -> Vec<T> {
    let mut current: Vec<T> = items.to_vec();
    if current.is_empty() || *tried >= budget {
        return current;
    }
    // Fast path: the empty candidate (granularity would only reach it
    // at the very end otherwise).
    *tried += 1;
    if test(&[]) {
        return Vec::new();
    }
    let mut granularity = 2usize.min(current.len());
    while current.len() >= 2 {
        let chunks = chunk_ranges(current.len(), granularity);
        let mut reduced = false;
        // Try each chunk alone, then each complement. A surviving
        // chunk resets granularity to 2; a surviving complement keeps
        // the granularity density (Zeller–Hildebrandt). Complements are
        // skipped at granularity 2, where they coincide with chunks.
        'search: {
            for range in &chunks {
                if *tried >= budget {
                    break 'search;
                }
                let candidate = current[range.clone()].to_vec();
                if candidate.len() < current.len() {
                    *tried += 1;
                    if test(&candidate) {
                        current = candidate;
                        granularity = 2;
                        reduced = true;
                        break 'search;
                    }
                }
            }
            if granularity > 2 {
                for range in &chunks {
                    if *tried >= budget {
                        break 'search;
                    }
                    let mut candidate = current[..range.start].to_vec();
                    candidate.extend_from_slice(&current[range.end..]);
                    if candidate.len() < current.len() {
                        *tried += 1;
                        if test(&candidate) {
                            current = candidate;
                            granularity = (granularity - 1).max(2);
                            reduced = true;
                            break 'search;
                        }
                    }
                }
            }
        }
        if *tried >= budget {
            break;
        }
        if !reduced {
            if granularity >= current.len() {
                break;
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    current
}

/// Splits `0..len` into `n` near-equal, non-empty ranges.
fn chunk_ranges(len: usize, n: usize) -> Vec<std::ops::Range<usize>> {
    let n = n.clamp(1, len.max(1));
    let base = len / n;
    let extra = len % n;
    let mut ranges = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Object, ObjectId};
    use crate::process::{Process, ProtocolStep, SnapshotProcess, SnapshotProtocol};
    use crate::value::Value;

    /// scan → Update(0, input) → scan → Output(view[0]).
    #[derive(Clone, Debug)]
    struct WriteThenRead {
        input: i64,
        wrote: bool,
    }

    impl SnapshotProtocol for WriteThenRead {
        fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
            if self.wrote {
                ProtocolStep::Output(view[0].clone())
            } else {
                self.wrote = true;
                ProtocolStep::Update(0, Value::Int(self.input))
            }
        }
        fn components(&self) -> usize {
            1
        }
    }

    fn two_writers() -> System {
        let mk = |input| {
            Box::new(SnapshotProcess::new(
                WriteThenRead { input, wrote: false },
                ObjectId(0),
            )) as Box<dyn Process>
        };
        System::new(vec![Object::snapshot(1)], vec![mk(1), mk(2)])
    }

    /// Flags runs where p0 read p1's value.
    fn p0_read_two(sys: &System, _crashed: &[ProcessId]) -> Option<String> {
        sys.output(ProcessId(0))
            .filter(|v| *v == Value::Int(2))
            .map(|_| "p0 observed p1's write".to_string())
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in 1..10usize {
            for n in 1..12usize {
                let ranges = chunk_ranges(len, n);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, len, "len {len} n {n}");
                assert!(ranges.iter().all(|r| !r.is_empty()));
            }
        }
    }

    #[test]
    fn capture_round_trips_a_random_run() {
        // Find a seed where p0 observes p1's write under Random.
        let factory = |_seed: u64| two_writers();
        let mut captured = None;
        for seed in 0..50u64 {
            if let Some(pair) = capture(
                &SchedulerSpec::Random,
                seed,
                100,
                &FaultPlan::none(),
                &factory,
                &|s, c| p0_read_two(s, c),
            ) {
                captured = Some(pair);
                break;
            }
        }
        let (cex, outcome) = captured.expect("some seed violates");
        assert!(outcome.violation.is_some());
        assert_eq!(outcome.steps, cex.decisions.len());
    }

    #[test]
    fn fixed_seed_violation_shrinks_to_known_minimum() {
        // Interleaved round-robin: p1 writes before p0's second scan,
        // so p0 outputs 2. The minimal reproduction needs p1's scan,
        // p1's update, and p0's full scan-update-scan — any 4-decision
        // subsequence either never lets p0 output or keeps 2 out of
        // p0's view. Minimum is 5 decisions.
        let cex = Counterexample::faultless(
            [0, 1, 0, 1, 0, 1].iter().map(|&p| ProcessId(p)).collect(),
        );
        let factory = || two_writers();
        let outcome = execute(&factory, &cex, &|s, c| p0_read_two(s, c));
        assert!(outcome.violation.is_some(), "seed schedule must violate");

        let (shrunk, report) =
            shrink(&cex, &factory, &|s, c| p0_read_two(s, c));
        assert_eq!(report.original_decisions, 6);
        assert_eq!(shrunk.decisions.len(), 5, "shrunk: {:?}", shrunk.decisions);
        assert_eq!(report.shrunk_decisions, 5);
        assert!(!report.truncated);
        assert!(report.fingerprint.is_some());
        // The shrunk trace still reproduces the same violation.
        let replayed = execute(&factory, &shrunk, &|s, c| p0_read_two(s, c));
        assert_eq!(replayed.fingerprint(), report.fingerprint);
    }

    #[test]
    fn shrinking_is_idempotent() {
        let cex = Counterexample::faultless(
            [0, 1, 0, 1, 0, 1].iter().map(|&p| ProcessId(p)).collect(),
        );
        let factory = || two_writers();
        let (once, _) = shrink(&cex, &factory, &|s, c| p0_read_two(s, c));
        let (twice, report) = shrink(&once, &factory, &|s, c| p0_read_two(s, c));
        assert_eq!(once, twice, "second pass must remove nothing");
        assert_eq!(report.original_decisions, report.shrunk_decisions);
    }

    #[test]
    fn non_violating_input_is_returned_unchanged() {
        let cex = Counterexample::faultless(vec![ProcessId(0), ProcessId(1)]);
        let factory = || two_writers();
        let (out, report) = shrink(&cex, &factory, &|s, c| p0_read_two(s, c));
        assert_eq!(out, cex);
        assert_eq!(report.fingerprint, None);
        assert_eq!(report.candidates_tried, 0);
    }

    #[test]
    fn redundant_faults_are_shrunk_away() {
        // The schedule never runs p1, so every planned fault (the
        // crash of p1, a stall far past the end of the run, a trigger
        // that never fires) is redundant and must be shrunk away.
        let check = |sys: &System, _: &[ProcessId]| {
            sys.output(ProcessId(0))
                .filter(|v| *v == Value::Int(1))
                .map(|_| "p0 never saw p1".to_string())
        };
        let plan =
            FaultPlan::parse("crash@1:0+stall@0:90-95+crash-after@1:scan:9")
                .unwrap();
        let cex = Counterexample {
            decisions: vec![ProcessId(0); 3],
            plan,
        };
        let factory = || two_writers();
        let outcome = execute(&factory, &cex, &check);
        assert!(outcome.violation.is_some());
        let (shrunk, report) = shrink(&cex, &factory, &check);
        assert_eq!(
            report.shrunk_faults, 0,
            "every fault is redundant here: {shrunk:?}"
        );
        assert!(shrunk.size() <= cex.size());
        let replayed = execute(&factory, &shrunk, &check);
        assert_eq!(replayed.fingerprint(), report.fingerprint);
    }

    #[test]
    fn candidate_budget_truncates_but_stays_valid() {
        let cex = Counterexample::faultless(
            [0, 1, 0, 1, 0, 1].iter().map(|&p| ProcessId(p)).collect(),
        );
        let factory = || two_writers();
        let (shrunk, report) =
            shrink_with(&cex, &factory, &|s, c| p0_read_two(s, c), 2);
        assert!(report.truncated);
        assert!(shrunk.size() <= cex.size());
        let replayed = execute(&factory, &shrunk, &|s, c| p0_read_two(s, c));
        assert_eq!(replayed.fingerprint(), report.fingerprint);
    }
}
