//! Execution traces: the copy-on-write [`Trace`] event log every
//! [`crate::system::System`] carries, plus the classic per-process
//! column diagrams used to present executions in the literature and
//! trace summaries.
//!
//! The renderers are used by the examples and invaluable when
//! debugging adversarial schedules: each process gets a column; each
//! row is one atomic step.

use crate::error::ModelError;
use crate::fault::{AppliedFault, FaultPlan};
use crate::object::{Operation, Response};
use crate::system::Event;
use std::collections::BTreeMap;
use std::fmt::Write;
use std::ops::Index;
use std::sync::Arc;

/// Tail length at which [`Trace::push`] seals the owned suffix into a
/// shared segment. Bounds both the per-clone copy (≤ `SEAL_THRESHOLD`
/// events) and the segment-chain length (≥ one event per segment).
const SEAL_THRESHOLD: usize = 32;

/// An immutable, `Arc`-shared run of consecutive events. Segments form
/// a parent chain: `parent` holds events `[0, start)`, this segment
/// holds `[start, start + events.len())`.
#[derive(Debug)]
struct Segment {
    parent: Option<Arc<Segment>>,
    start: usize,
    events: Box<[Event]>,
}

impl Drop for Segment {
    fn drop(&mut self) {
        // Unlink the parent chain iteratively: a recursive drop would
        // blow the stack on traces with hundreds of thousands of
        // events (one frame per segment).
        let mut parent = self.parent.take();
        while let Some(seg) = parent {
            match Arc::try_unwrap(seg) {
                Ok(mut owned) => parent = owned.parent.take(),
                Err(_) => break, // still shared: someone else drops it
            }
        }
    }
}

/// A copy-on-write execution trace: an `Arc`-shared sealed prefix plus
/// a small owned tail.
///
/// Forking a configuration used to deep-copy the whole event log,
/// making every explorer fork O(depth). `Clone` here copies one `Arc`
/// pointer and at most [`SEAL_THRESHOLD`] tail events; after
/// [`Trace::freeze`] (which the explorer calls before fanning out) a
/// clone copies nothing at all. Pushes still amortise to O(1): the
/// tail is sealed into a shared segment once it reaches the threshold.
///
/// # Examples
///
/// ```
/// use rsim_smr::trace::Trace;
///
/// let trace = Trace::new();
/// assert!(trace.is_empty());
/// let fork = trace.clone(); // shares the sealed prefix
/// assert_eq!(trace, fork);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Trace {
    sealed: Option<Arc<Segment>>,
    /// Total events in the sealed chain.
    sealed_len: usize,
    tail: Vec<Event>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.sealed_len + self.tail.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends an event, sealing the tail into a shared segment once it
    /// reaches the threshold.
    pub fn push(&mut self, event: Event) {
        self.tail.push(event);
        if self.tail.len() >= SEAL_THRESHOLD {
            self.freeze();
        }
    }

    /// Seals the owned tail into the shared prefix, making subsequent
    /// clones O(1). The explorer calls this before forking a
    /// configuration so every child shares the whole history.
    pub fn freeze(&mut self) {
        if self.tail.is_empty() {
            return;
        }
        let events = std::mem::take(&mut self.tail).into_boxed_slice();
        let sealed_now = events.len();
        self.sealed = Some(Arc::new(Segment {
            parent: self.sealed.take(),
            start: self.sealed_len,
            events,
        }));
        self.sealed_len += sealed_now;
    }

    /// Iterates the events in execution order.
    pub fn iter(&self) -> TraceIter<'_> {
        self.events_from(0)
    }

    /// Iterates the events from index `start` (clamped to the length)
    /// in execution order; whole segments before `start` are skipped
    /// without being walked.
    pub fn events_from(&self, start: usize) -> TraceIter<'_> {
        let mut slices: Vec<&[Event]> = Vec::new();
        let mut cursor = self.sealed.as_deref();
        while let Some(seg) = cursor {
            if seg.start + seg.events.len() <= start {
                break; // this segment (and all parents) precede `start`
            }
            let skip = start.saturating_sub(seg.start);
            slices.push(&seg.events[skip..]);
            cursor = seg.parent.as_deref();
        }
        slices.reverse();
        let tail_skip = start.saturating_sub(self.sealed_len).min(self.tail.len());
        slices.push(&self.tail[tail_skip..]);
        TraceIter { slices, outer: 0, inner: 0 }
    }

    /// The event at index `i`.
    pub fn get(&self, i: usize) -> Option<&Event> {
        if i >= self.sealed_len {
            return self.tail.get(i - self.sealed_len);
        }
        let mut cursor = self.sealed.as_deref();
        while let Some(seg) = cursor {
            if i >= seg.start {
                return seg.events.get(i - seg.start);
            }
            cursor = seg.parent.as_deref();
        }
        None
    }

    /// Copies the events into a contiguous vector.
    pub fn to_vec(&self) -> Vec<Event> {
        self.iter().cloned().collect()
    }
}

impl Index<usize> for Trace {
    type Output = Event;

    fn index(&self, i: usize) -> &Event {
        self.get(i).expect("trace index out of bounds")
    }
}

impl PartialEq for Trace {
    fn eq(&self, other: &Trace) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for Trace {}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Event;
    type IntoIter = TraceIter<'a>;

    fn into_iter(self) -> TraceIter<'a> {
        self.iter()
    }
}

impl FromIterator<Event> for Trace {
    fn from_iter<I: IntoIterator<Item = Event>>(events: I) -> Self {
        let mut trace = Trace::new();
        for event in events {
            trace.push(event);
        }
        trace
    }
}

/// Iterator over a [`Trace`]'s events in execution order.
#[derive(Clone, Debug)]
pub struct TraceIter<'a> {
    /// Root-first event runs (sealed segments, then the tail).
    slices: Vec<&'a [Event]>,
    outer: usize,
    inner: usize,
}

impl<'a> Iterator for TraceIter<'a> {
    type Item = &'a Event;

    fn next(&mut self) -> Option<&'a Event> {
        while self.outer < self.slices.len() {
            if let Some(event) = self.slices[self.outer].get(self.inner) {
                self.inner += 1;
                return Some(event);
            }
            self.outer += 1;
            self.inner = 0;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining: usize = self
            .slices
            .iter()
            .skip(self.outer)
            .map(|s| s.len())
            .sum::<usize>()
            .saturating_sub(self.inner);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for TraceIter<'_> {}

/// Renders one operation compactly.
pub fn format_op(op: &Operation) -> String {
    match op {
        Operation::Read { .. } => "read".into(),
        Operation::Write { value, .. } => format!("write {value}"),
        Operation::Update { component, value, .. } => {
            format!("U[{component}]={value}")
        }
        Operation::Scan { .. } => "scan".into(),
        Operation::WriteMax { component, value, .. } => {
            format!("max[{component}]={value}")
        }
        Operation::FetchInc { .. } => "f&i".into(),
        Operation::Swap { value, .. } => format!("swap {value}"),
        Operation::Cas { expect, update, .. } => format!("cas {expect}→{update}"),
    }
}

/// Renders one event as `p<pid>: <op> -> <resp>`; the analyzer's
/// happens-before diagnostics and the `analyze` CLI use this shape.
pub fn format_event(event: &crate::system::Event) -> String {
    format!(
        "p{}: {} -> {}",
        event.pid.0,
        format_op(&event.op),
        format_resp(&event.resp)
    )
}

/// Renders one response compactly.
pub fn format_resp(resp: &Response) -> String {
    match resp {
        Response::Ack => "ok".into(),
        Response::Value(v) => format!("{v}"),
        Response::View(view) => {
            let cells: Vec<String> = view.iter().map(|v| format!("{v}")).collect();
            format!("[{}]", cells.join(","))
        }
        Response::Flag(b) => format!("{b}"),
    }
}

/// Renders a trace as a per-process column diagram.
///
/// # Examples
///
/// ```
/// use rsim_smr::object::{Object, ObjectId};
/// use rsim_smr::process::{Process, ProtocolStep, SnapshotProcess, SnapshotProtocol};
/// use rsim_smr::system::System;
/// use rsim_smr::trace::format_trace;
/// use rsim_smr::value::Value;
///
/// #[derive(Clone, Debug)]
/// struct One;
/// impl SnapshotProtocol for One {
///     fn on_scan(&mut self, _v: &[Value]) -> ProtocolStep {
///         ProtocolStep::Output(Value::Int(1))
///     }
///     fn components(&self) -> usize { 1 }
/// }
///
/// # fn main() -> Result<(), rsim_smr::error::ModelError> {
/// let mut sys = System::new(
///     vec![Object::snapshot(1)],
///     vec![Box::new(SnapshotProcess::new(One, ObjectId(0))) as Box<dyn Process>],
/// );
/// sys.run_solo(rsim_smr::process::ProcessId(0), 10)?;
/// let diagram = format_trace(sys.trace(), 1);
/// assert!(diagram.contains("scan"));
/// # Ok(())
/// # }
/// ```
pub fn format_trace<'a, I>(events: I, n_processes: usize) -> String
where
    I: IntoIterator<Item = &'a Event>,
{
    let events: Vec<&Event> = events.into_iter().collect();
    let width = events
        .iter()
        .map(|e| format!("{} → {}", format_op(&e.op), format_resp(&e.resp)).len())
        .max()
        .unwrap_or(8)
        .max(8)
        + 2;
    let mut out = String::new();
    // Header.
    let _ = write!(out, "{:>5} ", "step");
    for p in 0..n_processes {
        let _ = write!(out, "{:<width$}", format!("p{p}"));
    }
    let _ = writeln!(out);
    for (i, e) in events.iter().enumerate() {
        let _ = write!(out, "{:>5} ", i + 1);
        for p in 0..n_processes {
            if p == e.pid.0 {
                let cell = format!("{} → {}", format_op(&e.op), format_resp(&e.resp));
                let _ = write!(out, "{cell:<width$}");
            } else {
                let _ = write!(out, "{:<width$}", "");
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders an applied-fault log alongside a trace: one line per fired
/// fault with its replay coordinates (decision clock and global step),
/// so a faulted execution's diagram says exactly where the plan bit.
pub fn format_fault_log(applied: &[AppliedFault]) -> String {
    if applied.is_empty() {
        return "faults: none\n".into();
    }
    let mut out = String::from("faults:\n");
    for fault in applied {
        let _ = writeln!(out, "  {fault}");
    }
    out
}

/// Parses [`format_fault_log`] output back into the applied-fault log,
/// making fired-fault coordinates in reports machine-consumable (e.g.
/// by `replay` tooling inspecting where a plan bit).
///
/// The inverse holds exactly: `parse_fault_log(&format_fault_log(log))`
/// returns `log`.
///
/// # Errors
///
/// Returns [`ModelError::BadSpec`] naming the malformed line.
pub fn parse_fault_log(text: &str) -> Result<Vec<AppliedFault>, ModelError> {
    let bad = |line: &str, reason: &str| ModelError::BadSpec {
        spec: line.to_string(),
        reason: format!("fault-log line: {reason}"),
    };
    let mut lines = text.lines();
    match lines.next() {
        Some("faults: none") => return Ok(Vec::new()),
        Some("faults:") => {}
        other => {
            return Err(bad(
                other.unwrap_or(""),
                "expected `faults: none` or `faults:` header",
            ))
        }
    }
    let mut applied = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let entry = line.trim_start();
        let (fault_part, rest) = entry
            .split_once(" fired at decision ")
            .ok_or_else(|| bad(line, "missing ` fired at decision `"))?;
        let plan = FaultPlan::parse(fault_part)?;
        let [fault] = plan.faults.as_slice() else {
            return Err(bad(line, "expected exactly one fault"));
        };
        let (decision, step) = rest
            .split_once(" (global step ")
            .ok_or_else(|| bad(line, "missing ` (global step `"))?;
        let decision = decision
            .parse::<usize>()
            .map_err(|_| bad(line, "bad decision index"))?;
        let step = step
            .strip_suffix(')')
            .ok_or_else(|| bad(line, "missing closing `)`"))?
            .parse::<usize>()
            .map_err(|_| bad(line, "bad global step"))?;
        applied.push(AppliedFault { fault: fault.clone(), decision, step });
    }
    Ok(applied)
}

/// Per-process and per-operation-kind step counts for a trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Steps taken by each process.
    pub steps_per_process: BTreeMap<usize, usize>,
    /// Mutating steps (writes/updates) per process.
    pub mutations_per_process: BTreeMap<usize, usize>,
    /// Total steps.
    pub total: usize,
}

/// Summarizes a trace.
pub fn summarize<'a, I>(events: I) -> TraceSummary
where
    I: IntoIterator<Item = &'a Event>,
{
    let mut summary = TraceSummary::default();
    for e in events {
        *summary.steps_per_process.entry(e.pid.0).or_default() += 1;
        if e.op.is_mutation() {
            *summary.mutations_per_process.entry(e.pid.0).or_default() += 1;
        }
        summary.total += 1;
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Object, ObjectId};
    use crate::process::{Process, ProcessId, ProtocolStep, SnapshotProcess, SnapshotProtocol};
    use crate::system::System;
    use crate::value::Value;

    #[derive(Clone, Debug)]
    struct WriteOnce {
        wrote: bool,
    }

    impl SnapshotProtocol for WriteOnce {
        fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
            if self.wrote {
                ProtocolStep::Output(view[0].clone())
            } else {
                self.wrote = true;
                ProtocolStep::Update(0, Value::Int(7))
            }
        }
        fn components(&self) -> usize {
            1
        }
    }

    fn sys() -> System {
        let mk = || {
            Box::new(SnapshotProcess::new(WriteOnce { wrote: false }, ObjectId(0)))
                as Box<dyn Process>
        };
        System::new(vec![Object::snapshot(1)], vec![mk(), mk()])
    }

    #[test]
    fn diagram_has_one_row_per_step_plus_header() {
        let mut s = sys();
        s.run_solo(ProcessId(0), 10).unwrap();
        let d = format_trace(s.trace(), 2);
        assert_eq!(d.lines().count(), s.trace().len() + 1);
        assert!(d.contains("U[0]=7"));
        assert!(d.contains("scan"));
    }

    #[test]
    fn columns_align_with_process_ids() {
        let mut s = sys();
        s.step(ProcessId(1)).unwrap();
        let d = format_trace(s.trace(), 2);
        let row = d.lines().nth(1).unwrap();
        // p1's cell starts after p0's empty column.
        let p0_start = d.lines().next().unwrap().find("p0").unwrap();
        let p1_start = d.lines().next().unwrap().find("p1").unwrap();
        assert!(row[p0_start..p1_start].trim().is_empty());
        assert!(row[p1_start..].contains("scan"));
    }

    #[test]
    fn summary_counts_steps_and_mutations() {
        let mut s = sys();
        s.run_solo(ProcessId(0), 10).unwrap();
        s.run_solo(ProcessId(1), 10).unwrap();
        let sum = summarize(s.trace());
        assert_eq!(sum.total, 6);
        assert_eq!(sum.steps_per_process[&0], 3);
        assert_eq!(sum.mutations_per_process[&0], 1);
    }

    #[test]
    fn fault_log_renders_coordinates() {
        use crate::fault::{FaultPlan, FaultScheduler};
        use crate::sched::RoundRobin;

        assert_eq!(format_fault_log(&[]), "faults: none\n");
        let mut s = sys();
        let plan = FaultPlan::parse("crash@1:1").unwrap();
        let mut sched = FaultScheduler::new(Box::new(RoundRobin::new()), plan);
        s.run(&mut sched, 1_000).unwrap();
        let log = format_fault_log(sched.applied());
        assert!(log.starts_with("faults:\n"));
        assert!(log.contains("crash@1:1"), "log was: {log}");
        assert!(log.contains("decision"), "log was: {log}");
    }

    #[test]
    fn fault_log_round_trips_through_parser() {
        use crate::fault::{Fault, OpKind};

        assert_eq!(parse_fault_log("faults: none\n").unwrap(), vec![]);
        let log = vec![
            AppliedFault {
                fault: Fault::CrashAt { process: ProcessId(1), step: 4 },
                decision: 9,
                step: 8,
            },
            AppliedFault {
                fault: Fault::StallWindow { process: ProcessId(0), from: 2, to: 6 },
                decision: 2,
                step: 2,
            },
            AppliedFault {
                fault: Fault::CrashAfterOp {
                    process: ProcessId(2),
                    kind: OpKind::Update,
                    occurrence: 3,
                },
                decision: 17,
                step: 16,
            },
        ];
        assert_eq!(parse_fault_log(&format_fault_log(&log)).unwrap(), log);
    }

    #[test]
    fn fault_log_round_trips_from_a_live_run() {
        use crate::fault::{FaultPlan, FaultScheduler};
        use crate::sched::RoundRobin;

        let mut s = sys();
        let plan = FaultPlan::parse("crash@1:1+stall@0:0-2").unwrap();
        let mut sched = FaultScheduler::new(Box::new(RoundRobin::new()), plan);
        s.run(&mut sched, 1_000).unwrap();
        assert!(!sched.applied().is_empty());
        let parsed = parse_fault_log(&format_fault_log(sched.applied())).unwrap();
        assert_eq!(parsed, sched.applied());
    }

    #[test]
    fn malformed_fault_logs_are_rejected() {
        for bad in [
            "",
            "fault lines without header\n",
            "faults:\n  crash@0:1 at decision 2 (global step 2)\n",
            "faults:\n  crash@0:1 fired at decision x (global step 2)\n",
            "faults:\n  crash@0:1 fired at decision 2 (global step 2\n",
            "faults:\n  explode@0:1 fired at decision 2 (global step 2)\n",
        ] {
            assert!(
                matches!(parse_fault_log(bad), Err(ModelError::BadSpec { .. })),
                "`{bad}` should not parse"
            );
        }
    }

    fn event(pid: usize, n: i64) -> Event {
        Event {
            pid: ProcessId(pid),
            op: Operation::Write { obj: ObjectId(0), value: Value::Int(n) },
            resp: Response::Ack,
        }
    }

    #[test]
    fn trace_push_len_get_iter_roundtrip() {
        let mut trace = Trace::new();
        assert!(trace.is_empty());
        // Cross several seal boundaries.
        let n = 3 * 32 + 7;
        for i in 0..n {
            trace.push(event(i % 3, i as i64));
        }
        assert_eq!(trace.len(), n);
        assert!(!trace.is_empty());
        for i in 0..n {
            assert_eq!(trace[i], event(i % 3, i as i64), "index {i}");
            assert_eq!(trace.get(i), Some(&event(i % 3, i as i64)));
        }
        assert_eq!(trace.get(n), None);
        let collected: Vec<Event> = trace.iter().cloned().collect();
        assert_eq!(collected, (0..n).map(|i| event(i % 3, i as i64)).collect::<Vec<_>>());
        assert_eq!(trace.to_vec(), collected);
        assert_eq!(trace.iter().len(), n);
    }

    #[test]
    fn trace_events_from_matches_slicing() {
        let mut trace = Trace::new();
        let n = 100;
        for i in 0..n {
            trace.push(event(0, i as i64));
        }
        let all = trace.to_vec();
        for start in [0, 1, 31, 32, 33, 64, 96, 99, 100, 150] {
            let suffix: Vec<Event> =
                trace.events_from(start).cloned().collect();
            assert_eq!(
                suffix,
                all[start.min(n)..].to_vec(),
                "suffix from {start}"
            );
        }
    }

    #[test]
    fn trace_clone_is_equal_and_diverges_independently() {
        let mut trace = Trace::new();
        for i in 0..50 {
            trace.push(event(0, i));
        }
        trace.freeze();
        let mut fork = trace.clone();
        assert_eq!(trace, fork);
        fork.push(event(1, 99));
        assert_ne!(trace, fork);
        assert_eq!(trace.len(), 50);
        assert_eq!(fork.len(), 51);
        assert_eq!(fork[50], event(1, 99));
        // The original is untouched by the fork's divergence.
        assert_eq!(trace.to_vec(), (0..50).map(|i| event(0, i)).collect::<Vec<_>>());
    }

    #[test]
    fn trace_freeze_is_idempotent_and_preserves_contents() {
        let mut trace = Trace::new();
        for i in 0..10 {
            trace.push(event(0, i));
            trace.freeze();
            trace.freeze();
        }
        assert_eq!(trace.len(), 10);
        assert_eq!(trace.to_vec(), (0..10).map(|i| event(0, i)).collect::<Vec<_>>());
        // Equality is structural, not segment-layout-sensitive.
        let unfrozen: Trace = (0..10).map(|i| event(0, i)).collect();
        assert_eq!(trace, unfrozen);
    }

    #[test]
    fn deep_trace_drops_without_stack_overflow() {
        // One-event segments maximise chain length: 200k frames would
        // overflow the stack if Segment::drop recursed.
        let mut trace = Trace::new();
        for i in 0..200_000 {
            trace.push(event(0, i));
            trace.freeze();
        }
        assert_eq!(trace.len(), 200_000);
        drop(trace);
    }

    #[test]
    fn op_and_resp_formatting() {
        assert_eq!(
            format_op(&Operation::Update {
                obj: ObjectId(0),
                component: 2,
                value: Value::Int(5)
            }),
            "U[2]=5"
        );
        assert_eq!(format_resp(&Response::Ack), "ok");
        assert_eq!(
            format_resp(&Response::View(vec![Value::Nil, Value::Int(1)])),
            "[⊥,1]"
        );
    }
}
