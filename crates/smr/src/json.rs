//! Minimal JSON reader for checkpoint files.
//!
//! The workspace builds offline with no serde; reports are *written*
//! with hand-rolled formatting (see
//! [`crate::campaign::CampaignReport::to_json`]), and this module is the
//! matching *reader* used by `campaign --resume` to load checkpoints.
//!
//! Numbers are kept as raw token strings: checkpoint fingerprints are
//! full 64-bit values that do not round-trip through `f64`, so
//! [`Json::as_u64`] parses the token directly.

use crate::error::ModelError;
use std::io;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Flushes the directory entry containing `path` so a rename (or link)
/// into it survives power loss. Directory fsync is a POSIX-ism; on
/// platforms where directories cannot be opened it is skipped — the
/// rename itself is still atomic, only its durability window widens.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    match std::fs::File::open(parent) {
        Ok(dir) => dir.sync_all(),
        // Windows (and some filesystems) refuse to open directories;
        // that is a capability gap, not a caller error.
        Err(_) => Ok(()),
    }
}

/// Writes `contents` to `path` atomically and durably: the bytes go to
/// a sibling `.tmp` file first, which is fsynced and then renamed over
/// the destination, after which the parent directory entry is fsynced
/// too — so a reader never observes a half-written file, and a power
/// loss never leaves a renamed-but-unjournalled entry. A crash between
/// write and rename leaves only the `.tmp` debris; the destination is
/// either the old bytes or the new bytes, never a mix.
///
/// This is the single write path for every JSON artifact the workspace
/// produces — campaign checkpoints, replay bundles, service snapshots,
/// and `--json-out` reports all funnel through here.
///
/// # Errors
///
/// Propagates the underlying I/O error from the write, the fsync, or
/// the rename.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(contents.as_bytes())?;
        // The temp file's bytes must be on disk *before* the rename
        // makes them reachable, else a crash can expose an empty file
        // under the final name.
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

/// Distinguishes concurrent writers' temp files (process id alone is
/// not enough: two threads of one process may race on the same target).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Atomically creates `path` with `contents` **iff it does not already
/// exist**, with the same durability guarantees as [`write_atomic`].
/// Returns `true` if this call created the file, `false` if some other
/// writer (thread, process, or an earlier run) got there first — in
/// which case the existing file is left untouched.
///
/// The bytes are staged in a uniquely-named temp file (fsynced), then
/// published with a hard link — the one POSIX primitive that is both
/// atomic and exclusive — so two writers racing on the same path can
/// never interleave bytes or both report success. This is what
/// deduplicates violation-bundle corpora: the first shard to produce a
/// fingerprint wins, every later shard observes `false`.
///
/// # Errors
///
/// Propagates I/O errors other than the benign already-exists race.
pub fn write_atomic_new(path: &Path, contents: &str) -> io::Result<bool> {
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(contents.as_bytes())?;
        file.sync_all()?;
    }
    let linked = match std::fs::hard_link(&tmp, path) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(false),
        Err(e) => Err(e),
    };
    // The staged copy is debris either way once the link call resolved.
    let _ = std::fs::remove_file(&tmp);
    if matches!(linked, Ok(true)) {
        sync_parent_dir(path)?;
    }
    linked
}

/// Renders `s` as a JSON string literal, escaping quotes, backslashes,
/// and control characters. The single escaping routine shared by every
/// hand-rolled writer in the workspace (reports, checkpoints, bundles,
/// service journals).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token (lossless for 64-bit integers).
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadSpec`] with the byte offset of the
    /// problem.
    pub fn parse(input: &str) -> Result<Json, ModelError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after document"));
        }
        Ok(value)
    }

    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a `u64` (lossless: parsed from the raw token).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as a `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Is this JSON `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &str) -> ModelError {
        ModelError::BadSpec {
            spec: "json".into(),
            reason: format!("{reason} at byte {}", self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ModelError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ModelError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ModelError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, ModelError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        Ok(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, ModelError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| {
                        self.err("unterminated escape")
                    })?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates do not occur in our own output;
                            // map unpaired ones to the replacement char.
                            out.push(
                                char::from_u32(code).unwrap_or('\u{fffd}'),
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ModelError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ModelError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(
            Json::parse("\"hi\\n\\\"there\\\"\"").unwrap().as_str(),
            Some("hi\n\"there\"")
        );
    }

    #[test]
    fn u64_fingerprints_round_trip_losslessly() {
        // Values above 2^53 lose precision in f64; the raw-token
        // representation must not.
        let fp = 0xcbf2_9ce4_8422_2325u64;
        let parsed = Json::parse(&fp.to_string()).unwrap();
        assert_eq!(parsed.as_u64(), Some(fp));
        assert_eq!(Json::parse("18446744073709551615").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{
            "version": 1,
            "completed": [ {"seed": 3, "violation": null}, {"seed": 4, "violation": "bad"} ],
            "fingerprints": [1, 2, 3]
        }"#;
        let json = Json::parse(doc).unwrap();
        assert_eq!(json.get("version").and_then(Json::as_usize), Some(1));
        let completed = json.get("completed").and_then(Json::as_arr).unwrap();
        assert_eq!(completed.len(), 2);
        assert!(completed[0].get("violation").unwrap().is_null());
        assert_eq!(completed[1].get("violation").and_then(Json::as_str), Some("bad"));
        let fps: Vec<u64> = json
            .get("fingerprints")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter_map(Json::as_u64)
            .collect();
        assert_eq!(fps, vec![1, 2, 3]);
    }

    #[test]
    fn reads_back_our_own_report_output() {
        use crate::campaign::{run_campaign, CampaignConfig, SchedulerSpec};
        use crate::object::{Object, ObjectId};
        use crate::process::{Process, ProtocolStep, SnapshotProcess, SnapshotProtocol};
        use crate::system::System;
        use crate::value::Value;

        #[derive(Clone, Debug)]
        struct One;
        impl SnapshotProtocol for One {
            fn on_scan(&mut self, _view: &[Value]) -> ProtocolStep {
                ProtocolStep::Output(Value::Int(1))
            }
            fn components(&self) -> usize {
                1
            }
        }
        let factory = |_seed: u64| {
            System::new(
                vec![Object::snapshot(1)],
                vec![Box::new(SnapshotProcess::new(One, ObjectId(0))) as Box<dyn Process>],
            )
        };
        let config = CampaignConfig {
            schedulers: vec![SchedulerSpec::RoundRobin],
            seed_start: 0,
            runs: 2,
            budget: 50,
            threads: 1,
        };
        let report = run_campaign(&config, factory, &|_| None);
        let json = Json::parse(&report.to_json()).unwrap();
        assert_eq!(json.get("total_runs").and_then(Json::as_usize), Some(2));
        assert_eq!(
            json.get("schedulers").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            let err = Json::parse(bad).unwrap_err();
            assert!(matches!(err, ModelError::BadSpec { .. }), "`{bad}`: {err:?}");
        }
    }
}
