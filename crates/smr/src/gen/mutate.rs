//! Paper-aware mutation operators over generated protocol specs.
//!
//! Each operator is tagged with the verdict the paper predicts for the
//! mutant, which is what the fuzz harness holds the pipeline to:
//!
//! | mutation          | operator                                   | paper clause                         | predicted verdict |
//! |-------------------|--------------------------------------------|--------------------------------------|-------------------|
//! | `shrink-m`        | race footprint → `n − 1` (below the bound) | Theorem 21(2) / Corollary 33         | must-violate      |
//! | `drop-helping`    | remove the commit-deference helping write  | §4 helping discussion; \[16\]/\[47\] | must-violate      |
//! | `tear-window`     | decide on the phase-1 coverage certificate (recertification pass lost) | §3 Block-Update atomicity | must-violate |
//! | `widen-m`         | race footprint → `race_m + 1`              | Theorem 21 (more space never hurts)  | must-stay-clean   |
//! | `reorder-prologue`| rotate each announce script by one         | announce order is unobserved         | must-stay-clean   |
//! | `trespass-write`  | p0 announces into p1's component           | §3 single-writer discipline          | analyzer-reject (RS-W001) |
//! | `aba-reuse`       | p0's script revisits a token (a, b, a)     | Corollary 36 ABA-freedom             | analyzer-reject (RS-W002) |
//! | `yield-leak`      | p0 writes the reserved yield symbol Y      | Theorem 20 yield condition           | analyzer-reject (RS-W005) |
//!
//! Analyzer-reject mutants must die at pre-flight — they never burn
//! search budget. Must-violate mutants must pass pre-flight, then be
//! killed by the bounded campaign search (violation found, shrunk,
//! bundled, replayed). Must-stay-clean mutants must pass pre-flight and
//! survive the same search with no violation.

use crate::value::Value;

use super::grammar::GenSpec;

/// The paper's predicted verdict for a mutant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The bounded campaign search must find a violation.
    MustViolate,
    /// The same search must find nothing.
    MustStayClean,
    /// Pre-flight analysis must reject the mutant before any search.
    AnalyzerReject,
}

impl Verdict {
    /// Stable lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::MustViolate => "must-violate",
            Verdict::MustStayClean => "must-stay-clean",
            Verdict::AnalyzerReject => "analyzer-reject",
        }
    }
}

/// A paper-aware mutation operator. See the module table for the
/// operator → paper clause mapping.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mutation {
    /// Race footprint below the Theorem 21 / Corollary 33 bound.
    ShrinkFootprint,
    /// Remove the commit-deference helping write (rule 2b).
    DropHelping,
    /// Tear the commit window: decide on the phase-1 certificate,
    /// skipping the phase-2 recertification pass.
    TearWindow,
    /// One extra race register (benign: space above the bound).
    WidenFootprint,
    /// Rotate each announce script by one position (benign: announce
    /// order is unobserved by the agreement core).
    ReorderPrologue,
    /// p0's first announce lands in p1's single-writer component.
    TrespassWrite,
    /// p0's announce stream revisits its first token after another.
    AbaReuse,
    /// p0's first announce writes the reserved yield symbol Y = ().
    YieldLeak,
}

/// Every operator, in report order.
pub const ALL_MUTATIONS: [Mutation; 8] = [
    Mutation::ShrinkFootprint,
    Mutation::DropHelping,
    Mutation::TearWindow,
    Mutation::WidenFootprint,
    Mutation::ReorderPrologue,
    Mutation::TrespassWrite,
    Mutation::AbaReuse,
    Mutation::YieldLeak,
];

impl Mutation {
    /// Stable kebab-case name (CLI syntax `gen:SEED:<name>`).
    pub fn name(self) -> &'static str {
        match self {
            Mutation::ShrinkFootprint => "shrink-m",
            Mutation::DropHelping => "drop-helping",
            Mutation::TearWindow => "tear-window",
            Mutation::WidenFootprint => "widen-m",
            Mutation::ReorderPrologue => "reorder-prologue",
            Mutation::TrespassWrite => "trespass-write",
            Mutation::AbaReuse => "aba-reuse",
            Mutation::YieldLeak => "yield-leak",
        }
    }

    /// Parses a stable mutation name.
    pub fn parse(name: &str) -> Option<Mutation> {
        ALL_MUTATIONS.into_iter().find(|m| m.name() == name)
    }

    /// The paper's predicted verdict for this operator.
    pub fn verdict(self) -> Verdict {
        match self {
            Mutation::ShrinkFootprint | Mutation::DropHelping | Mutation::TearWindow => {
                Verdict::MustViolate
            }
            Mutation::WidenFootprint | Mutation::ReorderPrologue => {
                Verdict::MustStayClean
            }
            Mutation::TrespassWrite | Mutation::AbaReuse | Mutation::YieldLeak => {
                Verdict::AnalyzerReject
            }
        }
    }

    /// The lint code an analyzer-reject mutant must trip (`None` for
    /// runtime-verdict mutants).
    pub fn expected_lint(self) -> Option<&'static str> {
        match self {
            Mutation::TrespassWrite => Some("RS-W001"),
            Mutation::AbaReuse => Some("RS-W002"),
            Mutation::YieldLeak => Some("RS-W005"),
            _ => None,
        }
    }

    /// Applies the operator to a base spec, producing the mutant spec.
    pub fn apply(self, base: &GenSpec) -> GenSpec {
        let mut spec = base.clone();
        spec.mutation = Some(self);
        match self {
            Mutation::ShrinkFootprint => {
                // Below the consensus bound: n processes racing over
                // n − 1 registers is exactly what Corollary 33 forbids.
                spec.race_m = base.procs - 1;
            }
            Mutation::DropHelping => spec.commit_deference = false,
            Mutation::TearWindow => spec.torn_commit = true,
            Mutation::WidenFootprint => spec.race_m = base.race_m + 1,
            Mutation::ReorderPrologue => {
                for script in &mut spec.prologue {
                    if script.len() > 1 {
                        script.rotate_left(1);
                    }
                }
            }
            Mutation::TrespassWrite => {
                // p0 announces into p1's single-writer component.
                spec.prologue[0][0].0 = 1;
            }
            Mutation::AbaReuse => {
                // p0's stream becomes a, b, a: token a reappears after
                // b on the same component.
                let (c, a) = spec.prologue[0][0].clone();
                let b = spec.prologue[0][1].1.clone();
                spec.prologue[0] = vec![(c, a.clone()), (c, b), (c, a)];
            }
            Mutation::YieldLeak => {
                spec.prologue[0][0].1 = Value::Tuple(Vec::new());
            }
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{self, AnalysisReport, LintCode, LintConfig};

    #[test]
    fn names_round_trip() {
        for mutation in ALL_MUTATIONS {
            assert_eq!(Mutation::parse(mutation.name()), Some(mutation));
        }
        assert_eq!(Mutation::parse("nope"), None);
    }

    #[test]
    fn analyzer_reject_mutants_trip_their_lint_codes() {
        let base = GenSpec::from_seed(0);
        let cases = [
            (Mutation::TrespassWrite, LintCode::SingleWriter),
            (Mutation::AbaReuse, LintCode::AbaFreedom),
            (Mutation::YieldLeak, LintCode::YieldSymbol),
        ];
        for (mutation, code) in cases {
            let spec = mutation.apply(&base);
            let findings =
                analyze::lint_system(&spec.build_system(), analyze::DEFAULT_BUDGET);
            let report = AnalysisReport::from_findings(findings, &LintConfig::default());
            assert!(
                report.has(code),
                "{} must trip {code}:\n{}",
                mutation.name(),
                report.render()
            );
        }
    }

    #[test]
    fn runtime_mutants_pass_static_lint_without_denials() {
        for seed in 0..16 {
            let base = GenSpec::from_seed(seed);
            for mutation in [
                Mutation::ShrinkFootprint,
                Mutation::DropHelping,
                Mutation::TearWindow,
                Mutation::WidenFootprint,
                Mutation::ReorderPrologue,
            ] {
                let spec = mutation.apply(&base);
                let findings =
                    analyze::lint_system(&spec.build_system(), analyze::DEFAULT_BUDGET);
                let report =
                    AnalysisReport::from_findings(findings, &LintConfig::default());
                assert_eq!(
                    report.deny_count(),
                    0,
                    "seed {seed} {} denied:\n{}",
                    mutation.name(),
                    report.render()
                );
            }
        }
    }
}
