//! The fuzz harness: generated protocol → pre-flight → seeded campaign
//! search → ddmin shrink → portable replay bundle, with a deterministic
//! JSON report.
//!
//! For every seed in the range the harness elaborates the grammar,
//! pre-flights the base protocol (it must pass with zero deny-level
//! diagnostics), and — in `--mutants` mode — holds each mutation
//! operator to its predicted verdict:
//!
//! * **analyzer-reject** mutants must die at pre-flight; they never
//!   burn a single search step.
//! * **must-violate** mutants must pass pre-flight and then be *killed*
//!   within the bounded search budget: a seeded obstruction-adversary campaign finds a
//!   violating run, the run is captured as a decision trace, ddmin
//!   shrinks it, the shrunk counterexample is re-verified and (when a
//!   corpus directory is given) stored as a portable replay bundle that
//!   the stock `replay` subcommand re-executes bit-for-bit.
//! * **must-stay-clean** mutants must pass pre-flight and survive the
//!   same search with no violation flagged.
//!
//! Every step is a pure function of the seed range and knobs, so the
//! JSON report is byte-identical at any `--threads` count: seeds are
//! fanned over workers but merged in seed order, and each seed's
//! pipeline is deterministic.
//!
//! The harness lints with [`lint_config`]: the stock defaults plus
//! RS-W005 (yield symbol) escalated to deny — the generator never emits
//! the reserved symbol Y, so any appearance is an injected fault and
//! must gate, not warn.

use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::analyze::{self, LintCode, LintConfig, Severity};
use crate::bundle::{tool_id, ReplayBundle, BUNDLE_VERSION};
use crate::campaign::{replay_run, SchedulerSpec};
use crate::error::ModelError;
use crate::fault::FaultPlan;
use crate::shrink;
use crate::system::System;
use crate::value::Value;

use super::grammar::GenSpec;
use super::mutate::{Mutation, Verdict, ALL_MUTATIONS};

/// Knobs for one fuzz run.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Generator seeds to elaborate (half-open).
    pub seeds: Range<u64>,
    /// Derive and judge the mutation operators for every seed.
    pub mutants: bool,
    /// Directory to store replay bundles of killed mutants into.
    pub corpus: Option<PathBuf>,
    /// Scheduler seeds tried per must-violate mutant before it counts
    /// as survived.
    pub kill_runs: u64,
    /// Scheduler seeds a must-stay-clean mutant must survive.
    pub clean_runs: u64,
    /// Step budget per search run.
    pub budget: usize,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seeds: 0..16,
            mutants: true,
            corpus: None,
            kill_runs: 1_200,
            clean_runs: 64,
            budget: 3_000,
            threads: 0,
        }
    }
}

/// The harness's lint severities: defaults plus RS-W005 escalated to
/// deny (a generated protocol writing the yield symbol is always an
/// injected fault).
pub fn lint_config() -> LintConfig {
    let mut config = LintConfig::default();
    config.set(LintCode::YieldSymbol, Severity::Deny);
    config
}

/// The consensus check applied to every searched configuration:
/// validity and agreement over the *partial* output set (consensus is
/// subset-closed, so judging partial outputs is sound and catches
/// disagreement before stragglers terminate). Messages are
/// deterministic — they double as the shrink fingerprint.
pub fn consensus_check(inputs: Vec<Value>) -> impl Fn(&System) -> Option<String> + Sync {
    move |sys| {
        let outs: Vec<Value> = sys.outputs().into_iter().flatten().collect();
        if outs.is_empty() {
            return None;
        }
        if let Some(bad) = outs.iter().find(|out| !inputs.contains(out)) {
            return Some(format!(
                "validity violated: output {bad:?} is not any process's input"
            ));
        }
        if outs.iter().any(|out| *out != outs[0]) {
            let mut distinct: Vec<String> =
                outs.iter().map(|out| format!("{out:?}")).collect();
            distinct.sort();
            distinct.dedup();
            return Some(format!(
                "agreement violated: distinct outputs [{}]",
                distinct.join(", ")
            ));
        }
        None
    }
}

/// How one mutant fared against its predicted verdict.
#[derive(Clone, Debug)]
pub enum MutantResult {
    /// Must-violate: a violation was found, shrunk, re-verified, and
    /// (when a corpus was given) bundled.
    Killed {
        /// The scheduler seed of the violating run.
        kill_seed: u64,
        /// Decision count of the captured run.
        original_decisions: usize,
        /// Decision count after ddmin.
        shrunk_decisions: usize,
        /// The (shrunk) violation message.
        violation: String,
        /// Corpus bundle path, when one was stored.
        bundle: Option<String>,
    },
    /// Must-violate mutant produced no violation within the budget.
    Survived {
        /// Search runs executed.
        runs: u64,
    },
    /// Analyzer-reject fulfilled: pre-flight denied the mutant.
    Rejected {
        /// The deny-level lint codes that fired, sorted.
        codes: Vec<String>,
    },
    /// Analyzer-reject missed: pre-flight passed a mutant it must stop.
    RejectedMissed,
    /// Must-stay-clean fulfilled: no violation across the runs.
    Clean {
        /// Search runs executed.
        runs: u64,
    },
    /// Must-stay-clean mutant was flagged with a violation.
    Flagged {
        /// The scheduler seed of the violating run.
        seed: u64,
        /// The violation message.
        violation: String,
    },
    /// A runtime-verdict mutant was unexpectedly rejected at
    /// pre-flight (generator or operator bug).
    UnexpectedReject {
        /// The rendered deny-level diagnostics.
        diagnostics: String,
    },
}

impl MutantResult {
    /// Stable result tag used in the JSON report.
    pub fn tag(&self) -> &'static str {
        match self {
            MutantResult::Killed { .. } => "killed",
            MutantResult::Survived { .. } => "survived",
            MutantResult::Rejected { .. } => "rejected",
            MutantResult::RejectedMissed => "rejected-missed",
            MutantResult::Clean { .. } => "clean",
            MutantResult::Flagged { .. } => "flagged",
            MutantResult::UnexpectedReject { .. } => "unexpected-reject",
        }
    }
}

/// One mutant's report entry.
#[derive(Clone, Debug)]
pub struct MutantReport {
    /// The operator's stable name.
    pub mutation: Mutation,
    /// What happened.
    pub result: MutantResult,
}

impl MutantReport {
    /// Did the outcome match the operator's predicted verdict?
    pub fn prediction_held(&self) -> bool {
        matches!(
            (self.mutation.verdict(), &self.result),
            (Verdict::MustViolate, MutantResult::Killed { .. })
                | (Verdict::MustStayClean, MutantResult::Clean { .. })
                | (Verdict::AnalyzerReject, MutantResult::Rejected { .. })
        )
    }
}

/// One generator seed's report entry.
#[derive(Clone, Debug)]
pub struct SeedReport {
    /// The generator seed.
    pub seed: u64,
    /// The spec's canonical form (the byte-determinism artifact).
    pub canonical: String,
    /// Did the base protocol pass pre-flight?
    pub preflight_ok: bool,
    /// Warn-level diagnostics on the base (deny-level always gates).
    pub warnings: usize,
    /// Mutant outcomes, in [`ALL_MUTATIONS`] order (empty without
    /// `--mutants` or when the base was rejected).
    pub mutants: Vec<MutantReport>,
}

/// Aggregated fuzz outcome; all fields are deterministic functions of
/// the [`FuzzConfig`].
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// The configuration that produced this report.
    pub config: FuzzConfig,
    /// Per-seed reports, in seed order.
    pub per_seed: Vec<SeedReport>,
}

impl FuzzReport {
    /// Protocols generated.
    pub fn generated(&self) -> usize {
        self.per_seed.len()
    }

    /// Base protocols the analyzer rejected (must be 0: the grammar
    /// emits only well-formed protocols).
    pub fn preflight_rejected(&self) -> usize {
        self.per_seed.iter().filter(|s| !s.preflight_ok).count()
    }

    fn count(&self, tag: &str) -> usize {
        self.per_seed
            .iter()
            .flat_map(|s| &s.mutants)
            .filter(|m| m.result.tag() == tag)
            .count()
    }

    /// Must-violate mutants killed (violation found + shrunk +
    /// re-verified).
    pub fn killed(&self) -> usize {
        self.count("killed")
    }

    /// Must-violate mutants that survived the search budget.
    pub fn survived(&self) -> usize {
        self.count("survived")
    }

    /// Must-stay-clean mutants that stayed clean.
    pub fn clean(&self) -> usize {
        self.count("clean")
    }

    /// Must-stay-clean mutants flagged with a violation.
    pub fn flagged(&self) -> usize {
        self.count("flagged")
    }

    /// Analyzer-reject mutants rejected at pre-flight, as predicted.
    pub fn rejected(&self) -> usize {
        self.count("rejected")
    }

    /// Analyzer-reject mutants the analyzer failed to stop.
    pub fn rejected_missed(&self) -> usize {
        self.count("rejected-missed")
    }

    /// Replay bundles written to the corpus.
    pub fn bundles_stored(&self) -> usize {
        self.per_seed
            .iter()
            .flat_map(|s| &s.mutants)
            .filter(|m| {
                matches!(&m.result, MutantResult::Killed { bundle: Some(_), .. })
            })
            .count()
    }

    /// Did every base pass pre-flight and every mutant match its
    /// predicted verdict?
    pub fn predictions_hold(&self) -> bool {
        self.preflight_rejected() == 0
            && self
                .per_seed
                .iter()
                .flat_map(|s| &s.mutants)
                .all(MutantReport::prediction_held)
    }

    /// Renders the report as JSON (hand-rolled: the workspace builds
    /// offline, without serde). Byte-identical for a fixed config at
    /// any thread count.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"seeds\": {{\"start\": {}, \"end\": {}}},\n",
            self.config.seeds.start, self.config.seeds.end
        ));
        out.push_str(&format!("  \"mutants\": {},\n", self.config.mutants));
        out.push_str(&format!("  \"kill_runs\": {},\n", self.config.kill_runs));
        out.push_str(&format!("  \"clean_runs\": {},\n", self.config.clean_runs));
        out.push_str(&format!("  \"budget\": {},\n", self.config.budget));
        out.push_str(&format!("  \"generated\": {},\n", self.generated()));
        out.push_str(&format!(
            "  \"preflight_rejected\": {},\n",
            self.preflight_rejected()
        ));
        out.push_str(&format!("  \"killed\": {},\n", self.killed()));
        out.push_str(&format!("  \"survived\": {},\n", self.survived()));
        out.push_str(&format!("  \"clean\": {},\n", self.clean()));
        out.push_str(&format!("  \"flagged\": {},\n", self.flagged()));
        out.push_str(&format!("  \"rejected\": {},\n", self.rejected()));
        out.push_str(&format!(
            "  \"rejected_missed\": {},\n",
            self.rejected_missed()
        ));
        out.push_str(&format!(
            "  \"bundles_stored\": {},\n",
            self.bundles_stored()
        ));
        out.push_str(&format!(
            "  \"predictions_hold\": {},\n",
            self.predictions_hold()
        ));
        out.push_str("  \"per_seed\": [\n");
        for (i, seed) in self.per_seed.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"seed\": {}, \"canonical\": {}, \"preflight\": {}, \
                 \"warnings\": {}, \"mutants\": [",
                seed.seed,
                json_string(&seed.canonical),
                json_string(if seed.preflight_ok { "ok" } else { "rejected" }),
                seed.warnings,
            ));
            for (j, mutant) in seed.mutants.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&mutant_json(mutant));
            }
            out.push_str(&format!(
                "]}}{}\n",
                if i + 1 < self.per_seed.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn mutant_json(mutant: &MutantReport) -> String {
    let mut out = format!(
        "{{\"name\": {}, \"verdict\": {}, \"result\": {}",
        json_string(mutant.mutation.name()),
        json_string(mutant.mutation.verdict().name()),
        json_string(mutant.result.tag()),
    );
    match &mutant.result {
        MutantResult::Killed {
            kill_seed,
            original_decisions,
            shrunk_decisions,
            violation,
            bundle,
        } => {
            out.push_str(&format!(
                ", \"kill_seed\": {kill_seed}, \"original_decisions\": \
                 {original_decisions}, \"shrunk_decisions\": {shrunk_decisions}, \
                 \"violation\": {}, \"bundle\": {}",
                json_string(violation),
                bundle.as_deref().map_or("null".into(), json_string),
            ));
        }
        MutantResult::Survived { runs } | MutantResult::Clean { runs } => {
            out.push_str(&format!(", \"runs\": {runs}"));
        }
        MutantResult::Rejected { codes } => {
            out.push_str(&format!(
                ", \"codes\": [{}]",
                codes.iter().map(|c| json_string(c)).collect::<Vec<_>>().join(", ")
            ));
        }
        MutantResult::Flagged { seed, violation } => {
            out.push_str(&format!(
                ", \"seed\": {seed}, \"violation\": {}",
                json_string(violation)
            ));
        }
        MutantResult::RejectedMissed => {}
        MutantResult::UnexpectedReject { diagnostics } => {
            out.push_str(&format!(
                ", \"diagnostics\": {}",
                json_string(diagnostics)
            ));
        }
    }
    out.push('}');
    out
}

/// JSON string literal with escaping for the characters our messages
/// can contain.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Extracts the sorted, deduplicated `RS-Wxxx` codes from rendered
/// deny-level diagnostics.
fn deny_codes(diagnostics: &str) -> Vec<String> {
    let mut codes: Vec<String> = diagnostics
        .lines()
        .filter_map(|line| {
            let start = line.find("[RS-W")? + 1;
            let end = line[start..].find(']')? + start;
            Some(line[start..end].to_string())
        })
        .collect();
    codes.sort();
    codes.dedup();
    codes
}

/// Runs the fuzz harness. Deterministic: the report is a pure function
/// of the config, regardless of `threads`.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzReport {
    if let Some(dir) = &config.corpus {
        // Fail late, not here: bundle stores report their own errors.
        let _ = std::fs::create_dir_all(dir);
    }
    let seeds: Vec<u64> = config.seeds.clone().collect();
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        config.threads
    }
    .min(seeds.len().max(1));

    let results: Mutex<Vec<Option<SeedReport>>> = Mutex::new(vec![None; seeds.len()]);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&seed) = seeds.get(index) else { break };
                let report = fuzz_seed(seed, config);
                results.lock().expect("fuzz results lock")[index] = Some(report);
            });
        }
    });
    let per_seed = results
        .into_inner()
        .expect("fuzz results lock")
        .into_iter()
        .map(|r| r.expect("every seed processed"))
        .collect();
    FuzzReport { config: config.clone(), per_seed }
}

/// The full pipeline for one generator seed.
fn fuzz_seed(seed: u64, config: &FuzzConfig) -> SeedReport {
    let lint = lint_config();
    let spec = GenSpec::from_seed(seed);
    let mut report = SeedReport {
        seed,
        canonical: spec.canonical(),
        preflight_ok: false,
        warnings: 0,
        mutants: Vec::new(),
    };
    match analyze::preflight(&spec.build_system(), &lint) {
        Ok(analysis) => {
            report.preflight_ok = true;
            report.warnings = analysis.warn_count();
        }
        Err(_) => return report,
    }
    if !config.mutants {
        return report;
    }
    for mutation in ALL_MUTATIONS {
        let mspec = mutation.apply(&spec);
        let preflight = analyze::preflight(&mspec.build_system(), &lint);
        let result = match (mutation.verdict(), preflight) {
            (Verdict::AnalyzerReject, Err(ModelError::PreflightRejected { diagnostics })) => {
                MutantResult::Rejected { codes: deny_codes(&diagnostics) }
            }
            (Verdict::AnalyzerReject, _) => MutantResult::RejectedMissed,
            (_, Err(err)) => MutantResult::UnexpectedReject {
                diagnostics: err.to_string(),
            },
            (Verdict::MustViolate, Ok(_)) => kill_mutant(&mspec, config),
            (Verdict::MustStayClean, Ok(_)) => verify_clean(&mspec, config),
        };
        report.mutants.push(MutantReport { mutation, result });
    }
    report
}

/// Hunts a must-violate mutant: seeded obstruction-adversary campaign
/// runs (the solo-window schedules racing decisions need) until a
/// violation, then capture → ddmin shrink → re-verify → bundle.
fn kill_mutant(mspec: &GenSpec, config: &FuzzConfig) -> MutantResult {
    let sched = SchedulerSpec::parse("obstruction:1").expect("stock spec");
    let factory = |_seed: u64| mspec.build_system();
    let check = consensus_check(mspec.inputs());
    let cex_check =
        |sys: &System, _crashed: &[crate::process::ProcessId]| check(sys);
    for kill_seed in 0..config.kill_runs {
        let record = replay_run(&sched, kill_seed, config.budget, factory, &check);
        if record.violation.is_none() {
            continue;
        }
        let Some((cex, _)) = shrink::capture(
            &sched,
            kill_seed,
            config.budget,
            &FaultPlan::none(),
            &factory,
            &cex_check,
        ) else {
            continue;
        };
        let seeded = || factory(kill_seed);
        let (shrunk, _) = shrink::shrink(&cex, &seeded, &cex_check);
        let outcome = shrink::execute(&seeded, &shrunk, &cex_check);
        let (Some(violation), Some(fingerprint)) =
            (outcome.violation.clone(), outcome.fingerprint())
        else {
            continue;
        };
        let bundle = ReplayBundle {
            version: BUNDLE_VERSION,
            tool: tool_id(),
            system: vec![
                ("kind".into(), "campaign".into()),
                ("protocol".into(), mspec.cli_name()),
                ("procs".into(), mspec.procs.to_string()),
                ("m".into(), mspec.total_components().to_string()),
                ("rounds".into(), "0".into()),
            ],
            scheduler: sched.to_string(),
            seed: kill_seed,
            plan: shrunk.plan.to_string(),
            decisions: shrunk.decisions.iter().map(|p| p.0).collect(),
            fingerprint,
            violation: violation.clone(),
        };
        // The kill only counts if the bundle replays bit-for-bit.
        if bundle.replay(&seeded, &cex_check).is_err() {
            continue;
        }
        let stored = config.corpus.as_ref().and_then(|dir| {
            let path = dir.join(format!(
                "{}.bundle.json",
                mspec.cli_name().replace(':', "-")
            ));
            bundle.store(&path).ok()?;
            Some(path.to_string_lossy().into_owned())
        });
        return MutantResult::Killed {
            kill_seed,
            original_decisions: cex.decisions.len(),
            shrunk_decisions: shrunk.decisions.len(),
            violation,
            bundle: stored,
        };
    }
    MutantResult::Survived { runs: config.kill_runs }
}

/// Verifies a must-stay-clean mutant across the clean-run budget.
fn verify_clean(mspec: &GenSpec, config: &FuzzConfig) -> MutantResult {
    let sched = SchedulerSpec::parse("obstruction:1").expect("stock spec");
    let factory = |_seed: u64| mspec.build_system();
    let check = consensus_check(mspec.inputs());
    for seed in 0..config.clean_runs {
        let record = replay_run(&sched, seed, config.budget, factory, &check);
        if let Some(violation) = record.violation {
            return MutantResult::Flagged { seed, violation };
        }
    }
    MutantResult::Clean { runs: config.clean_runs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deny_codes_extracts_sorted_unique() {
        let text = "error[RS-W002]: b\nerror[RS-W001]: a\nerror[RS-W001]: c";
        assert_eq!(deny_codes(text), vec!["RS-W001", "RS-W002"]);
    }

    #[test]
    fn consensus_check_flags_partial_disagreement() {
        use crate::object::{Object, ObjectId};
        use crate::process::{Process, SnapshotProcess, SnapshotProtocol, ProtocolStep};

        #[derive(Clone, Debug)]
        struct Decide(i64);
        impl SnapshotProtocol for Decide {
            fn on_scan(&mut self, _view: &[Value]) -> ProtocolStep {
                ProtocolStep::Output(Value::Int(self.0))
            }
            fn components(&self) -> usize {
                1
            }
        }
        let mk = |v| {
            Box::new(SnapshotProcess::new(Decide(v), ObjectId(0))) as Box<dyn Process>
        };
        let mut sys = System::new(vec![Object::snapshot(1)], vec![mk(1), mk(2)]);
        let check = consensus_check(vec![Value::Int(1), Value::Int(2)]);
        assert!(check(&sys).is_none(), "no outputs yet");
        sys.step(crate::process::ProcessId(0)).unwrap();
        assert!(check(&sys).is_none(), "one output agrees with itself");
        sys.step(crate::process::ProcessId(1)).unwrap();
        let msg = check(&sys).expect("disagreement");
        assert!(msg.contains("agreement violated"), "{msg}");
    }

    #[test]
    fn report_json_is_deterministic_across_threads() {
        let mut config = FuzzConfig {
            seeds: 0..4,
            mutants: false,
            ..FuzzConfig::default()
        };
        config.threads = 1;
        let one = run_fuzz(&config).to_json();
        config.threads = 4;
        let four = run_fuzz(&config).to_json();
        assert_eq!(one, four);
    }
}
