//! Seeded protocol generation and paper-aware mutation fuzzing.
//!
//! The paper's lower-bound machinery makes sharp predictions about
//! *which* protocols must fail: any obstruction-free consensus protocol
//! racing over fewer registers than Corollary 33 allows has a
//! disagreeing schedule, ABA-susceptible write streams void the
//! Corollary 36 reduction, and single-writer trespasses void §3's
//! discipline outright. Hand-written protocol families exercise a
//! handful of points in that space; this module generates the space.
//!
//! Three layers close the analyze → explore → shrink → bundle loop:
//!
//! * [`grammar`] — [`grammar::GenSpec`]: a seeded, byte-deterministic
//!   grammar of well-formed protocols (process count, announce
//!   prologue scripts over single-writer components, a phased-racing
//!   agreement core with helping writes over a multi-writer footprint).
//!   The same seed yields a byte-identical [`grammar::GenSpec::canonical`]
//!   form on any thread; every emitted protocol passes the Pass 1
//!   analyzer with zero deny-level diagnostics.
//! * [`mutate`] — paper-aware mutation operators, each tagged with the
//!   paper's predicted verdict ([`mutate::Verdict`]): must-violate
//!   (footprint below the bound, dropped helping write, torn scan →
//!   update window), must-stay-clean (widened footprint, reordered
//!   prologue), or analyzer-must-reject (single-writer trespass, ABA
//!   reuse, leaked yield symbol).
//! * [`fuzz`] — the harness: generated protocol → pre-flight → seeded
//!   campaign search → on violation, ddmin shrink → portable replay
//!   bundle in a corpus directory, with a deterministic JSON report
//!   (`fuzz --seeds A..B --mutants --corpus DIR` on the CLI).

pub mod fuzz;
pub mod grammar;
pub mod mutate;

pub use fuzz::{run_fuzz, FuzzConfig, FuzzReport};
pub use grammar::{GenSpec, GenProtocol, ScriptProtocol};
pub use mutate::{Mutation, Verdict};
