//! The protocol grammar: seeded, byte-deterministic generation of
//! well-formed Assumption 1 protocols.
//!
//! A generated protocol has two parts:
//!
//! 1. An **announce prologue**: each process writes a short script of
//!    globally fresh tokens to its own single-writer announce
//!    component. This is the scripted surface the analyzer-facing
//!    mutations edit (trespass a neighbour's component, reuse a value
//!    ABA-style, leak the yield symbol) and the scripted protocol
//!    stream the covering-simulation fuzz tests drive.
//! 2. A **phased-racing agreement core** over `race_m` multi-writer
//!    components, in the style of the space-optimal algorithms the
//!    paper's bounds target (Bouzid–Raynal–Sutra \[16\], Zhu \[47\]):
//!    adopt the frontier, escalate on same-level conflict, defer to
//!    committed values (the *helping write*), decide when every race
//!    component carries your triple. The runtime-facing mutations
//!    disable exactly one of these rules at a time.
//!
//! Generation draws from a self-contained SplitMix64 stream derived
//! from the seed — deliberately *not* the workspace `rand` shim, so the
//! canonical form of a seed can never drift with scheduler RNG changes
//! (see CHANGES.md, PR 1). [`GenSpec::canonical`] renders every field;
//! two specs are byte-identical iff their canonical strings are.

use crate::object::{Object, ObjectId};
use crate::process::{Process, ProcessId, ProtocolStep, SnapshotProcess, SnapshotProtocol};
use crate::system::System;
use crate::value::Value;

use super::mutate::Mutation;

/// SplitMix64 step: the standard 64-bit mixing recipe. Self-contained
/// so generated protocols are byte-deterministic independently of any
/// scheduler RNG.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fully elaborated generated-protocol specification. The grammar's
/// free dimensions are the process count, the race footprint, and the
/// per-process prologue scripts; the rule toggles are all on for a
/// well-formed base spec and are switched off (or the scripts edited)
/// by [`Mutation::apply`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GenSpec {
    /// The generating seed (recorded for replay coordinates).
    pub seed: u64,
    /// Process count `n` (2 or 3).
    pub procs: usize,
    /// Multi-writer race components; the base grammar emits `n + 1` or
    /// `n + 2` — strictly above the Theorem 21 / Corollary 33 bound,
    /// with slack so the base family is robustly clean (racing *at* the
    /// bound, `m = n`, has rare genuine violations and is left to the
    /// hand-written families). Total footprint is `procs + race_m` (one
    /// single-writer announce component per process, then the race
    /// components).
    pub race_m: usize,
    /// Per-process announce scripts: `(component, value)` update steps
    /// run before the agreement core. Base scripts write only the
    /// process's own announce component, with globally fresh tokens.
    pub prologue: Vec<Vec<(usize, Value)>>,
    /// Rule 1: adopt the largest `(round, phase, value)` entry when
    /// behind the frontier.
    pub adopt: bool,
    /// Rule 2: escalate to a fresh round on a same-level value
    /// conflict (rather than racing values in place).
    pub escalation: bool,
    /// Rule 2 rider: carry the largest conflicting value upward.
    pub carry: bool,
    /// Rule 2b: defer to an earlier-round committed value — the
    /// *helping write* that keeps late escalators from overrunning a
    /// decided value.
    pub commit_deference: bool,
    /// Torn commit window: decide directly on the phase-1 coverage
    /// certificate, skipping the phase-2 recertification pass — as if
    /// the second half of the §3 Block-Update window was lost.
    pub torn_commit: bool,
    /// The mutation this spec was derived with, if any (base = `None`).
    pub mutation: Option<Mutation>,
}

impl GenSpec {
    /// Elaborates the grammar at `seed`. Pure function of the seed:
    /// byte-deterministic at any thread count.
    pub fn from_seed(seed: u64) -> GenSpec {
        let mut state = seed ^ 0xD1B5_4A32_D192_ED03;
        let mut draw = || splitmix64(&mut state);
        let procs = 2 + (draw() % 2) as usize;
        let race_m = procs + 1 + (draw() % 2) as usize;
        let mut token = 0;
        let prologue = (0..procs)
            .map(|i| {
                let len = 2 + (draw() % 2) as usize;
                (0..len)
                    .map(|_| {
                        token += 1;
                        // Fresh, process-disjoint tokens, far from the
                        // 1..=n input domain: no ABA reuse, no
                        // collision with race values.
                        (i, Value::Int(1_000 + 100 * i as i64 + token))
                    })
                    .collect()
            })
            .collect();
        GenSpec {
            seed,
            procs,
            race_m,
            prologue,
            adopt: true,
            escalation: true,
            carry: true,
            commit_deference: true,
            torn_commit: false,
            mutation: None,
        }
    }

    /// The canonical textual form: renders every field, so two specs
    /// are identical iff their canonical strings are byte-identical.
    /// This is the artifact the determinism property tests compare
    /// across threads.
    pub fn canonical(&self) -> String {
        let mut out = format!(
            "gen:v1;seed={};n={};race={};adopt={};esc={};carry={};help={};tear={}",
            self.seed,
            self.procs,
            self.race_m,
            u8::from(self.adopt),
            u8::from(self.escalation),
            u8::from(self.carry),
            u8::from(self.commit_deference),
            u8::from(self.torn_commit),
        );
        for (i, script) in self.prologue.iter().enumerate() {
            out.push_str(&format!(";p{i}="));
            for (j, (c, v)) in script.iter().enumerate() {
                if j > 0 {
                    out.push('+');
                }
                out.push_str(&format!("U[{c}]={v:?}"));
            }
        }
        if let Some(mutation) = self.mutation {
            out.push_str(&format!(";mut={}", mutation.name()));
        }
        out
    }

    /// The consensus inputs of the generated system: process `i`
    /// proposes `i + 1`.
    pub fn inputs(&self) -> Vec<Value> {
        (1..=self.procs as i64).map(Value::Int).collect()
    }

    /// Total snapshot footprint: announce components plus race
    /// components.
    pub fn total_components(&self) -> usize {
        self.procs + self.race_m
    }

    /// The generated protocol state machine for process `i`.
    pub fn protocol(&self, i: usize) -> GenProtocol {
        GenProtocol {
            script: self.prologue[i].clone(),
            pos: 0,
            base: self.procs,
            race_m: self.race_m,
            round: 1,
            phase: 1,
            value: Value::Int(i as i64 + 1),
            adopt: self.adopt,
            escalation: self.escalation,
            carry: self.carry,
            commit_deference: self.commit_deference,
            torn_commit: self.torn_commit,
        }
    }

    /// Builds the system: one `(procs + race_m)`-component snapshot,
    /// announce components single-writer-restricted to their owners.
    pub fn build_system(&self) -> System {
        let processes = (0..self.procs)
            .map(|i| {
                Box::new(SnapshotProcess::new(self.protocol(i), ObjectId(0)))
                    as Box<dyn Process>
            })
            .collect();
        let mut sys =
            System::new(vec![Object::snapshot(self.total_components())], processes);
        for i in 0..self.procs {
            sys.restrict_writer(ObjectId(0), i, ProcessId(i));
        }
        sys
    }

    /// Wait-free scripted protocols for the covering-simulation fuzz
    /// harness: each simulator replays this spec's prologue values over
    /// a small `m`-component footprint, then outputs its tag. This is
    /// the single entry point `tests/fuzz_simulation.rs` drives.
    pub fn script_protocol(&self, i: usize, m: usize, tag: i64) -> ScriptProtocol {
        let script = self.prologue[i % self.procs]
            .iter()
            .enumerate()
            .map(|(j, (_, v))| ((i + j) % m, v.clone()))
            .collect();
        ScriptProtocol { script, pos: 0, m, tag }
    }

    /// Parses the CLI protocol syntax `gen:SEED[:MUTATION]`, e.g.
    /// `gen:7` or `gen:7:shrink-m`.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed part.
    pub fn parse_cli(spec: &str) -> Result<GenSpec, String> {
        let rest = spec
            .strip_prefix("gen:")
            .ok_or_else(|| format!("`{spec}` does not start with gen:"))?;
        let (seed_part, mutation_part) = match rest.split_once(':') {
            Some((s, m)) => (s, Some(m)),
            None => (rest, None),
        };
        let seed: u64 = seed_part
            .parse()
            .map_err(|_| format!("bad gen seed `{seed_part}` in `{spec}`"))?;
        let base = GenSpec::from_seed(seed);
        match mutation_part {
            None => Ok(base),
            Some(name) => {
                let mutation = Mutation::parse(name)
                    .ok_or_else(|| format!("unknown gen mutation `{name}` in `{spec}`"))?;
                Ok(mutation.apply(&base))
            }
        }
    }

    /// The CLI protocol syntax for this spec (`gen:SEED[:MUTATION]`).
    pub fn cli_name(&self) -> String {
        match self.mutation {
            Some(mutation) => format!("gen:{}:{}", self.seed, mutation.name()),
            None => format!("gen:{}", self.seed),
        }
    }
}

/// Entry in a race component: `(round, phase, value)`; ⊥ is "no entry".
fn parse_entry(entry: &Value) -> Option<(i64, i64, &Value)> {
    match entry.as_tuple()? {
        [r, ph, v] => Some((r.as_int()?, ph.as_int()?, v)),
        _ => None,
    }
}

fn encode_entry(round: i64, phase: i64, v: &Value) -> Value {
    Value::triple(Value::Int(round), Value::Int(phase), v.clone())
}

/// A generated protocol instance: announce prologue, then the
/// toggle-parameterised phased-racing core over the race components.
#[derive(Clone, Debug)]
pub struct GenProtocol {
    script: Vec<(usize, Value)>,
    pos: usize,
    /// First race component (announce components sit below).
    base: usize,
    race_m: usize,
    round: i64,
    phase: i64,
    value: Value,
    adopt: bool,
    escalation: bool,
    carry: bool,
    commit_deference: bool,
    torn_commit: bool,
}

impl SnapshotProtocol for GenProtocol {
    fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
        if self.pos < self.script.len() {
            let (c, v) = self.script[self.pos].clone();
            self.pos += 1;
            return ProtocolStep::Update(c, v);
        }
        let eff = &view[self.base..];
        let entries: Vec<(i64, i64, &Value)> =
            eff.iter().filter_map(parse_entry).collect();
        // Rule 1: behind the frontier? Adopt the largest entry.
        if self.adopt {
            if let Some(&(r, ph, v)) = entries
                .iter()
                .max_by(|a, b| (a.0, a.1, a.2).cmp(&(b.0, b.1, b.2)))
            {
                if (r, ph) > (self.round, self.phase) {
                    self.round = r;
                    self.phase = ph;
                    self.value = v.clone();
                }
            }
        }
        // Rule 2: same-level value conflict → escalate (carrying the
        // larger value up).
        let rival = entries
            .iter()
            .filter(|&&(r, ph, v)| r == self.round && ph == self.phase && *v != self.value)
            .map(|&(_, _, v)| v)
            .max();
        if let Some(w) = rival {
            if self.escalation {
                self.round += 1;
                self.phase = 1;
            }
            if self.carry && *w > self.value {
                self.value = w.clone();
            }
        }
        // Rule 2b: the helping write — defer to an earlier round's
        // committed value before proposing over it.
        if self.commit_deference && self.phase == 1 {
            let committed = entries
                .iter()
                .filter(|&&(r, ph, _)| ph == 2 && r < self.round)
                .map(|&(_, _, v)| v)
                .max();
            if let Some(w) = committed {
                if *w != self.value {
                    self.value = w.clone();
                }
            }
        }
        // Rule 3: every race component carries my triple? Full phase-1
        // coverage earns the commit phase; full phase-2 coverage earns
        // the decision. A torn commit window collapses the two: decide
        // on the phase-1 certificate alone, as if the recertification
        // half of the Block-Update window was lost.
        let mine = encode_entry(self.round, self.phase, &self.value);
        if eff.iter().all(|e| *e == mine) {
            if self.phase == 2 || self.torn_commit {
                return ProtocolStep::Output(self.value.clone());
            }
            self.phase = 2;
        }
        // Rule 4: write over the smallest race component.
        let target = (0..self.race_m)
            .min_by(|&a, &b| eff[a].cmp(&eff[b]))
            .expect("race_m >= 1");
        ProtocolStep::Update(
            self.base + target,
            encode_entry(self.round, self.phase, &self.value),
        )
    }

    fn components(&self) -> usize {
        self.base + self.race_m
    }
}

/// A wait-free scripted protocol: replays its update script, then
/// outputs its tag. This is the Π shape the covering-simulation fuzz
/// tests feed to `core::Simulation` (wait-free by construction, hence
/// obstruction-free — all Theorem 21 asks of Π).
#[derive(Clone, Debug)]
pub struct ScriptProtocol {
    script: Vec<(usize, Value)>,
    pos: usize,
    m: usize,
    tag: i64,
}

impl SnapshotProtocol for ScriptProtocol {
    fn on_scan(&mut self, _view: &[Value]) -> ProtocolStep {
        if self.pos >= self.script.len() {
            return ProtocolStep::Output(Value::Int(self.tag));
        }
        let (c, v) = self.script[self.pos].clone();
        self.pos += 1;
        ProtocolStep::Update(c % self.m, v)
    }

    fn components(&self) -> usize {
        self.m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{self, AnalysisReport, LintConfig};
    use crate::process::ProcessId;
    use crate::sched::Random;

    #[test]
    fn same_seed_same_canonical_bytes() {
        for seed in 0..64 {
            let a = GenSpec::from_seed(seed).canonical();
            let b = GenSpec::from_seed(seed).canonical();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn canonical_is_thread_independent() {
        let on_main: Vec<String> =
            (0..16).map(|s| GenSpec::from_seed(s).canonical()).collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..16).map(|s| GenSpec::from_seed(s).canonical()).collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), on_main);
        }
    }

    #[test]
    fn base_specs_pass_static_lint_without_denials() {
        for seed in 0..32 {
            let spec = GenSpec::from_seed(seed);
            let findings =
                analyze::lint_system(&spec.build_system(), analyze::DEFAULT_BUDGET);
            let report = AnalysisReport::from_findings(findings, &LintConfig::default());
            assert_eq!(
                report.deny_count(),
                0,
                "seed {seed} denied:\n{}",
                report.render()
            );
        }
    }

    #[test]
    fn solo_runs_decide_own_input() {
        for seed in [0, 1, 7, 23] {
            let spec = GenSpec::from_seed(seed);
            for i in 0..spec.procs {
                let mut sys = spec.build_system();
                let out = sys.run_solo(ProcessId(i), 256).unwrap();
                assert_eq!(out, Value::Int(i as i64 + 1), "seed {seed} p{i}");
            }
        }
    }

    #[test]
    fn contended_runs_terminate_and_agree_often() {
        // The base core is the escalating racing family: random
        // schedules terminate in consensus (the must-stay-clean
        // baseline the benign mutants are judged against).
        let spec = GenSpec::from_seed(3);
        let inputs = spec.inputs();
        let mut terminated = 0;
        for seed in 0..20 {
            let mut sys = spec.build_system();
            sys.run(&mut Random::seeded(seed), 20_000).unwrap();
            if sys.all_terminated() {
                terminated += 1;
                let outs: Vec<Value> = sys.outputs().into_iter().flatten().collect();
                assert!(outs.iter().all(|o| *o == outs[0]), "disagreement: {outs:?}");
                assert!(outs.iter().all(|o| inputs.contains(o)));
            }
        }
        assert!(terminated >= 15, "only {terminated}/20 runs terminated");
    }

    #[test]
    fn parse_cli_round_trips() {
        let base = GenSpec::from_seed(9);
        assert_eq!(GenSpec::parse_cli("gen:9").unwrap(), base);
        assert_eq!(GenSpec::parse_cli(&base.cli_name()).unwrap(), base);
        assert!(GenSpec::parse_cli("gen:x").is_err());
        assert!(GenSpec::parse_cli("gen:9:no-such-mutation").is_err());
        assert!(GenSpec::parse_cli("racing").is_err());
    }
}
