//! Portable replay bundles.
//!
//! A [`ReplayBundle`] is a self-contained JSON artifact describing one
//! counterexample: how to rebuild the system (an ordered key/value
//! description the CLI interprets), the scheduler spec and seed it was
//! found under, the fault plan, the (usually shrunk) decision trace,
//! and the expected violation — both its message and its FNV-1a
//! fingerprint. Bundles are written through the atomic writer in
//! [`crate::json::write_atomic`], so a half-written bundle is never
//! observable, and the `replay` CLI subcommand re-executes a bundle and
//! exits zero only if the violation reproduces bit-for-bit — making
//! counterexamples portable across machines and CI.

use crate::error::ModelError;
use crate::fault::FaultPlan;
use crate::json::{write_atomic, write_atomic_new, Json};
use crate::shrink::{execute, CexCheck, CexOutcome, Counterexample};
use crate::system::System;
use std::path::Path;

/// Current bundle format version.
pub const BUNDLE_VERSION: u32 = 1;

/// The tool identifier stamped into bundles this build writes.
pub fn tool_id() -> String {
    format!("rsim-smr {}", env!("CARGO_PKG_VERSION"))
}

/// A self-contained, portable counterexample artifact. See the module
/// docs for the format's role; [`ReplayBundle::to_json`] /
/// [`ReplayBundle::parse`] are exact inverses.
#[derive(Clone, PartialEq, Debug)]
pub struct ReplayBundle {
    /// Format version ([`BUNDLE_VERSION`]).
    pub version: u32,
    /// Tool that wrote the bundle (informational, not validated).
    pub tool: String,
    /// Ordered key/value description of the system under test; the
    /// runtime treats it as opaque, the CLI interprets it (e.g.
    /// `kind=campaign`, `protocol=racing`, `procs=3`).
    pub system: Vec<(String, String)>,
    /// The scheduler spec the violation was found under (provenance;
    /// the replay itself uses the decision trace).
    pub scheduler: String,
    /// The seed the violation was found under (also seeds the factory).
    pub seed: u64,
    /// The fault plan, in its parseable syntax.
    pub plan: String,
    /// The decision trace: process indices, in scheduling order.
    pub decisions: Vec<usize>,
    /// FNV-1a fingerprint of the expected violation message.
    pub fingerprint: u64,
    /// The expected violation message (human context; the fingerprint
    /// is what replay verifies).
    pub violation: String,
}

impl ReplayBundle {
    /// A system-description field by key.
    pub fn system_field(&self, key: &str) -> Option<&str> {
        self.system
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The bundle's counterexample in replayable form.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadSpec`] if the stored plan does not
    /// parse.
    pub fn counterexample(&self) -> Result<Counterexample, ModelError> {
        Ok(Counterexample {
            decisions: self
                .decisions
                .iter()
                .copied()
                .map(crate::process::ProcessId)
                .collect(),
            plan: FaultPlan::parse(&self.plan)?,
        })
    }

    /// Re-executes the bundle against a fresh system from `factory` and
    /// verifies the violation reproduces bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BundleMismatch`] when the replay produces
    /// no violation or a different one, and [`ModelError::BadSpec`]
    /// when the stored plan does not parse.
    pub fn replay(
        &self,
        factory: &dyn Fn() -> System,
        check: CexCheck,
    ) -> Result<CexOutcome, ModelError> {
        let cex = self.counterexample()?;
        let outcome = execute(factory, &cex, check);
        match outcome.fingerprint() {
            Some(fp) if fp == self.fingerprint => Ok(outcome),
            Some(fp) => Err(ModelError::BundleMismatch {
                expected: self.fingerprint,
                actual: format!(
                    "violation `{}` (fingerprint {fp})",
                    outcome.violation.as_deref().unwrap_or("")
                ),
            }),
            None => Err(ModelError::BundleMismatch {
                expected: self.fingerprint,
                actual: "no violation".into(),
            }),
        }
    }

    /// Serialises the bundle as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"version\": {},\n", self.version));
        out.push_str(&format!("  \"tool\": {},\n", json_string(&self.tool)));
        out.push_str("  \"system\": {");
        for (i, (key, value)) in self.system.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json_string(key), json_string(value)));
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"scheduler\": {},\n",
            json_string(&self.scheduler)
        ));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"plan\": {},\n", json_string(&self.plan)));
        out.push_str("  \"decisions\": [");
        for (i, d) in self.decisions.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&d.to_string());
        }
        out.push_str("],\n");
        out.push_str(&format!("  \"fingerprint\": {},\n", self.fingerprint));
        out.push_str(&format!(
            "  \"violation\": {}\n",
            json_string(&self.violation)
        ));
        out.push_str("}\n");
        out
    }

    /// Parses a bundle from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadSpec`] on malformed JSON, missing
    /// fields, or an unsupported version.
    pub fn parse(text: &str) -> Result<ReplayBundle, ModelError> {
        let bad = |reason: &str| ModelError::BadSpec {
            spec: "bundle".into(),
            reason: reason.into(),
        };
        let doc = Json::parse(text)?;
        let version = doc
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing `version`"))? as u32;
        if version != BUNDLE_VERSION {
            return Err(bad(&format!(
                "unsupported bundle version {version} (this tool reads \
                 version {BUNDLE_VERSION})"
            )));
        }
        let str_field = |key: &str| -> Result<String, ModelError> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(&format!("missing `{key}`")))
        };
        let mut system = Vec::new();
        match doc.get("system") {
            Some(Json::Obj(members)) => {
                for (key, value) in members {
                    let value = value
                        .as_str()
                        .ok_or_else(|| bad("`system` values must be strings"))?;
                    system.push((key.clone(), value.to_string()));
                }
            }
            _ => return Err(bad("missing `system` object")),
        }
        let mut decisions = Vec::new();
        for d in doc
            .get("decisions")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `decisions` array"))?
        {
            decisions.push(d.as_usize().ok_or_else(|| bad("bad decision index"))?);
        }
        Ok(ReplayBundle {
            version,
            tool: str_field("tool")?,
            system,
            scheduler: str_field("scheduler")?,
            seed: doc
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("missing `seed`"))?,
            plan: str_field("plan")?,
            decisions,
            fingerprint: doc
                .get("fingerprint")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("missing `fingerprint`"))?,
            violation: str_field("violation")?,
        })
    }

    /// Loads a bundle file.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadSpec`] if the file cannot be read or
    /// parsed.
    pub fn load(path: &Path) -> Result<ReplayBundle, ModelError> {
        let text = std::fs::read_to_string(path).map_err(|e| ModelError::BadSpec {
            spec: path.display().to_string(),
            reason: format!("cannot read bundle: {e}"),
        })?;
        ReplayBundle::parse(&text)
    }

    /// Writes the bundle atomically (tmp file + rename).
    ///
    /// # Errors
    ///
    /// Propagates the I/O error from the atomic writer.
    pub fn store(&self, path: &Path) -> std::io::Result<()> {
        write_atomic(path, &self.to_json())
    }

    /// The canonical corpus file name for this bundle: keyed by the
    /// violation fingerprint, so the same counterexample found by any
    /// shard maps to the same path.
    pub fn corpus_file_name(&self) -> String {
        format!("cex-{:016x}.bundle.json", self.fingerprint)
    }

    /// Stores the bundle into a corpus directory, deduplicating by
    /// fingerprint: the first writer creates
    /// [`ReplayBundle::corpus_file_name`] atomically, every later
    /// writer (same process, another process, or a crashed-and-retried
    /// worker) finds the file already present and writes nothing.
    /// Returns `true` if this call created the file. Two racing
    /// writers can both reach the create step, but the create itself
    /// is a hard-link publish — exactly one wins and no reader ever
    /// sees a partial bundle.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error from the atomic writer.
    pub fn store_dedup(&self, corpus_dir: &Path) -> std::io::Result<bool> {
        let path = corpus_dir.join(self.corpus_file_name());
        write_atomic_new(&path, &self.to_json())
    }
}

/// JSON string literal with escaping (the workspace-wide routine in
/// [`crate::json::escape`]).
fn json_string(s: &str) -> String {
    crate::json::escape(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint;
    use crate::object::{Object, ObjectId};
    use crate::process::{Process, ProcessId, ProtocolStep, SnapshotProcess, SnapshotProtocol};
    use crate::value::Value;

    fn sample() -> ReplayBundle {
        ReplayBundle {
            version: BUNDLE_VERSION,
            tool: tool_id(),
            system: vec![
                ("kind".into(), "campaign".into()),
                ("protocol".into(), "racing".into()),
                ("procs".into(), "3".into()),
            ],
            scheduler: "random".into(),
            seed: 28,
            plan: "crash@1:2".into(),
            decisions: vec![0, 1, 2, 0, 1],
            fingerprint: 0xcbf2_9ce4_8422_2325,
            violation: "consensus violated: 2 distinct outputs \"{1, 3}\"".into(),
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let bundle = sample();
        let parsed = ReplayBundle::parse(&bundle.to_json()).unwrap();
        assert_eq!(parsed, bundle);
    }

    #[test]
    fn fingerprints_round_trip_losslessly_above_2_53() {
        let mut bundle = sample();
        bundle.fingerprint = u64::MAX - 1;
        let parsed = ReplayBundle::parse(&bundle.to_json()).unwrap();
        assert_eq!(parsed.fingerprint, u64::MAX - 1);
    }

    #[test]
    fn store_load_round_trips_atomically() {
        let dir = std::env::temp_dir()
            .join(format!("rsim-bundle-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cex.bundle.json");
        let bundle = sample();
        bundle.store(&path).unwrap();
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file must be renamed away"
        );
        assert_eq!(ReplayBundle::load(&path).unwrap(), bundle);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpus_store_dedups_racing_writers_by_fingerprint() {
        let dir = std::env::temp_dir()
            .join(format!("rsim-corpus-race-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bundle = sample();
        // Two "shards" racing to publish the same fingerprint many
        // times: exactly one create must win per round, and the file
        // must always parse back to the full bundle (never torn).
        let created: usize = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    scope.spawn(|| {
                        let mut wins = 0usize;
                        for _ in 0..16 {
                            if bundle.store_dedup(&dir).unwrap() {
                                wins += 1;
                            }
                        }
                        wins
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).sum()
        });
        assert_eq!(created, 1, "exactly one writer may create the file");
        let path = dir.join(bundle.corpus_file_name());
        assert_eq!(ReplayBundle::load(&path).unwrap(), bundle);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|name| name != path.file_name().unwrap())
            .collect();
        assert!(leftovers.is_empty(), "stray tmp files: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_fingerprints_get_distinct_corpus_files() {
        let dir = std::env::temp_dir()
            .join(format!("rsim-corpus-distinct-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = sample();
        let mut b = sample();
        b.fingerprint ^= 0xdead_beef;
        assert!(a.store_dedup(&dir).unwrap());
        assert!(b.store_dedup(&dir).unwrap());
        assert_ne!(a.corpus_file_name(), b.corpus_file_name());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_bundles_are_structured_errors() {
        for bad in [
            "{}",
            "{\"version\": 99}",
            "not json",
            "{\"version\": 1, \"tool\": \"x\"}",
        ] {
            assert!(
                matches!(
                    ReplayBundle::parse(bad),
                    Err(ModelError::BadSpec { .. })
                ),
                "`{bad}` should be rejected"
            );
        }
    }

    #[test]
    fn system_fields_are_ordered_and_queryable() {
        let bundle = sample();
        assert_eq!(bundle.system_field("kind"), Some("campaign"));
        assert_eq!(bundle.system_field("procs"), Some("3"));
        assert_eq!(bundle.system_field("missing"), None);
    }

    /// scan → Update(0, input) → scan → Output(view[0]).
    #[derive(Clone, Debug)]
    struct WriteThenRead {
        input: i64,
        wrote: bool,
    }

    impl SnapshotProtocol for WriteThenRead {
        fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
            if self.wrote {
                ProtocolStep::Output(view[0].clone())
            } else {
                self.wrote = true;
                ProtocolStep::Update(0, Value::Int(self.input))
            }
        }
        fn components(&self) -> usize {
            1
        }
    }

    fn two_writers() -> System {
        let mk = |input| {
            Box::new(SnapshotProcess::new(
                WriteThenRead { input, wrote: false },
                ObjectId(0),
            )) as Box<dyn Process>
        };
        System::new(vec![Object::snapshot(1)], vec![mk(1), mk(2)])
    }

    fn check(sys: &System, _crashed: &[ProcessId]) -> Option<String> {
        sys.output(ProcessId(0))
            .filter(|v| *v == Value::Int(2))
            .map(|_| "p0 observed p1's write".to_string())
    }

    fn violating_bundle() -> ReplayBundle {
        let violation = "p0 observed p1's write";
        ReplayBundle {
            version: BUNDLE_VERSION,
            tool: tool_id(),
            system: vec![("kind".into(), "test".into())],
            scheduler: "fixed".into(),
            seed: 0,
            plan: "none".into(),
            decisions: vec![0, 1, 0, 1, 0],
            fingerprint: fingerprint(violation),
            violation: violation.into(),
        }
    }

    #[test]
    fn replay_reproduces_and_verifies() {
        let bundle = violating_bundle();
        let outcome = bundle.replay(&two_writers, &|s, c| check(s, c)).unwrap();
        assert_eq!(outcome.violation.as_deref(), Some("p0 observed p1's write"));
        assert_eq!(outcome.steps, 5);
    }

    #[test]
    fn tampered_fingerprint_is_a_bundle_mismatch() {
        let mut bundle = violating_bundle();
        bundle.fingerprint ^= 1;
        let err = bundle.replay(&two_writers, &|s, c| check(s, c)).unwrap_err();
        match err {
            ModelError::BundleMismatch { expected, actual } => {
                assert_eq!(expected, bundle.fingerprint);
                assert!(actual.contains("fingerprint"), "actual: {actual}");
            }
            other => panic!("expected BundleMismatch, got {other:?}"),
        }
    }

    #[test]
    fn non_reproducing_decisions_are_a_bundle_mismatch() {
        let mut bundle = violating_bundle();
        bundle.decisions = vec![0, 0, 0];
        let err = bundle.replay(&two_writers, &|s, c| check(s, c)).unwrap_err();
        assert!(matches!(err, ModelError::BundleMismatch { .. }));
    }
}
