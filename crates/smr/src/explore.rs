//! Exhaustive schedule exploration (bounded model checking).
//!
//! For small systems we can enumerate *every* interleaving up to a depth
//! bound, deduplicating indistinguishable configurations. This is how we
//! machine-check protocol properties the paper assumes of Π:
//!
//! * validity/agreement on all reachable terminal configurations
//!   ([`Explorer::explore`] with a terminal predicate);
//! * obstruction-freedom: from every reachable configuration, every solo
//!   execution terminates ([`Explorer::check_solo_termination`]);
//! * x-obstruction-freedom via [`Explorer::check_group_termination`].

use crate::error::ModelError;
use crate::process::ProcessId;
use crate::system::System;
use crate::value::Value;
use std::collections::HashSet;

/// Exploration limits.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum schedule depth per branch.
    pub max_depth: usize,
    /// Maximum number of distinct configurations to visit.
    pub max_configs: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_depth: 64, max_configs: 200_000 }
    }
}

/// Result of an exploration.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Distinct configurations visited.
    pub configs_visited: usize,
    /// Terminal (all-terminated) configurations found.
    pub terminals: usize,
    /// Whether exploration was cut off by [`Limits`].
    pub truncated: bool,
    /// The first violation found, if any: the schedule that produced it
    /// and a description.
    pub violation: Option<(Vec<ProcessId>, String)>,
}

impl ExploreReport {
    /// Did the exploration complete with no violation?
    pub fn is_clean(&self) -> bool {
        self.violation.is_none()
    }
}

/// Bounded exhaustive explorer over schedules of a [`System`].
#[derive(Clone, Debug, Default)]
pub struct Explorer {
    limits: Limits,
}

impl Explorer {
    /// Creates an explorer with the given limits.
    pub fn new(limits: Limits) -> Self {
        Explorer { limits }
    }

    /// Explores all schedules from `initial`, invoking `check` on every
    /// visited configuration (with the schedule so far). `check` returns
    /// a violation description to stop the search.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from stepping the system.
    pub fn explore(
        &self,
        initial: &System,
        check: &mut dyn FnMut(&System) -> Option<String>,
    ) -> Result<ExploreReport, ModelError> {
        let mut report = ExploreReport {
            configs_visited: 0,
            terminals: 0,
            truncated: false,
            violation: None,
        };
        let mut seen: HashSet<String> = HashSet::new();
        // DFS stack of (configuration, schedule so far).
        let mut stack: Vec<(System, Vec<ProcessId>)> = vec![(initial.clone(), Vec::new())];
        while let Some((sys, schedule)) = stack.pop() {
            if !seen.insert(sys.config_key()) {
                continue;
            }
            report.configs_visited += 1;
            if report.configs_visited > self.limits.max_configs {
                report.truncated = true;
                break;
            }
            if let Some(msg) = check(&sys) {
                report.violation = Some((schedule, msg));
                break;
            }
            if sys.all_terminated() {
                report.terminals += 1;
                continue;
            }
            if schedule.len() >= self.limits.max_depth {
                report.truncated = true;
                continue;
            }
            for i in 0..sys.process_count() {
                let pid = ProcessId(i);
                if sys.is_terminated(pid) {
                    continue;
                }
                let mut fork = sys.clone();
                fork.step(pid)?;
                let mut sched = schedule.clone();
                sched.push(pid);
                stack.push((fork, sched));
            }
        }
        Ok(report)
    }

    /// Collects the set of output vectors over all reachable terminal
    /// configurations. Each vector is indexed by process.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from stepping the system.
    pub fn terminal_outputs(
        &self,
        initial: &System,
    ) -> Result<(Vec<Vec<Value>>, ExploreReport), ModelError> {
        let mut outputs: Vec<Vec<Value>> = Vec::new();
        let mut seen_outputs: HashSet<String> = HashSet::new();
        let report = self.explore(initial, &mut |sys| {
            if sys.all_terminated() {
                let outs: Vec<Value> =
                    sys.outputs().into_iter().map(Option::unwrap).collect();
                let key = format!("{outs:?}");
                if seen_outputs.insert(key) {
                    outputs.push(outs);
                }
            }
            None
        })?;
        Ok((outputs, report))
    }

    /// Checks obstruction-freedom empirically: from every reachable
    /// configuration (within limits), every live process terminates when
    /// run solo for at most `solo_budget` steps.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from stepping the system.
    pub fn check_solo_termination(
        &self,
        initial: &System,
        solo_budget: usize,
    ) -> Result<ExploreReport, ModelError> {
        self.check_group_termination(initial, 1, solo_budget)
    }

    /// Checks x-obstruction-freedom empirically: from every reachable
    /// configuration, for every group of at most `x` live processes
    /// (rotations of the live set) and for several round-robin quanta
    /// (each member taking 1, 2, or 3 consecutive steps per turn —
    /// step-level and operation-level alternation differ for snapshot
    /// protocols), running only that group for `budget` steps
    /// terminates all of them.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from stepping the system.
    pub fn check_group_termination(
        &self,
        initial: &System,
        x: usize,
        budget: usize,
    ) -> Result<ExploreReport, ModelError> {
        let n = initial.process_count();
        let quanta: &[usize] = if x == 1 { &[1] } else { &[1, 2, 3] };
        self.explore(initial, &mut |sys| {
            let live: Vec<ProcessId> = (0..n)
                .map(ProcessId)
                .filter(|&p| !sys.is_terminated(p))
                .collect();
            if live.is_empty() {
                return None;
            }
            // Rotations of the live set give n candidate groups of size
            // ≤ x; for x = 1 this is exactly "every solo execution".
            for start in 0..live.len() {
                let group: Vec<ProcessId> = (0..x.min(live.len()))
                    .map(|k| live[(start + k) % live.len()])
                    .collect();
                for &quantum in quanta {
                    let mut fork = sys.clone();
                    let mut steps = 0;
                    'run: while steps < budget {
                        let mut progressed = false;
                        for &p in &group {
                            for _ in 0..quantum {
                                if fork.is_terminated(p) {
                                    break;
                                }
                                if fork.step(p).is_err() {
                                    return Some(format!(
                                        "step error during group run of {group:?}"
                                    ));
                                }
                                steps += 1;
                                progressed = true;
                                if steps >= budget {
                                    break 'run;
                                }
                            }
                        }
                        if !progressed {
                            break;
                        }
                    }
                    if group.iter().any(|&p| !fork.is_terminated(p)) {
                        return Some(format!(
                            "group {group:?} failed to terminate within {budget} \
                             steps (quantum {quantum})"
                        ));
                    }
                }
            }
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Object, ObjectId};
    use crate::process::{Process, ProtocolStep, SnapshotProcess, SnapshotProtocol};

    /// Writes its input then outputs the register's content.
    #[derive(Clone, Debug)]
    struct WriteThenRead {
        input: i64,
        wrote: bool,
    }

    impl SnapshotProtocol for WriteThenRead {
        fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
            if self.wrote {
                ProtocolStep::Output(view[0].clone())
            } else {
                self.wrote = true;
                ProtocolStep::Update(0, Value::Int(self.input))
            }
        }
        fn components(&self) -> usize {
            1
        }
    }

    fn two_process_system() -> System {
        let mk = |input| {
            Box::new(SnapshotProcess::new(
                WriteThenRead { input, wrote: false },
                ObjectId(0),
            )) as Box<dyn Process>
        };
        System::new(vec![Object::snapshot(1)], vec![mk(1), mk(2)])
    }

    #[test]
    fn explores_all_terminal_outputs() {
        let explorer = Explorer::default();
        let (outputs, report) =
            explorer.terminal_outputs(&two_process_system()).unwrap();
        assert!(!report.truncated);
        assert!(report.terminals > 0);
        // Outcomes: each process outputs the last write it saw; all four
        // combinations of {1,2}×{1,2} except impossible ones. At minimum
        // both-see-own and both-see-other occur.
        assert!(outputs.contains(&vec![Value::Int(1), Value::Int(2)]));
        assert!(outputs.len() >= 2);
    }

    #[test]
    fn solo_termination_holds_for_terminating_protocol() {
        let explorer = Explorer::default();
        let report = explorer
            .check_solo_termination(&two_process_system(), 10)
            .unwrap();
        assert!(report.is_clean(), "violation: {:?}", report.violation);
    }

    #[test]
    fn solo_termination_catches_spinner() {
        /// Never terminates: keeps writing forever.
        #[derive(Clone, Debug)]
        struct Spinner {
            i: i64,
        }
        impl SnapshotProtocol for Spinner {
            fn on_scan(&mut self, _view: &[Value]) -> ProtocolStep {
                self.i += 1;
                ProtocolStep::Update(0, Value::Int(self.i))
            }
            fn components(&self) -> usize {
                1
            }
        }
        let sys = System::new(
            vec![Object::snapshot(1)],
            vec![Box::new(SnapshotProcess::new(Spinner { i: 0 }, ObjectId(0)))],
        );
        let explorer = Explorer::new(Limits { max_depth: 3, max_configs: 1000 });
        let report = explorer.check_solo_termination(&sys, 20).unwrap();
        assert!(!report.is_clean());
    }

    #[test]
    fn violation_reports_schedule() {
        let explorer = Explorer::default();
        let report = explorer
            .explore(&two_process_system(), &mut |sys| {
                sys.output(ProcessId(0)).map(|v| format!("p0 output {v}"))
            })
            .unwrap();
        let (schedule, msg) = report.violation.unwrap();
        assert!(msg.contains("p0 output"));
        assert!(!schedule.is_empty());
    }

    #[test]
    fn dedup_bounds_visited_configs() {
        let explorer = Explorer::default();
        let report = explorer
            .explore(&two_process_system(), &mut |_| None)
            .unwrap();
        // Without dedup the tree has hundreds of nodes; with dedup the
        // distinct-configuration count is small.
        assert!(report.configs_visited < 100);
    }
}
