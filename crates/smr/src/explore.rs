//! Exhaustive schedule exploration (bounded model checking).
//!
//! For small systems we can enumerate *every* interleaving up to a depth
//! bound, deduplicating indistinguishable configurations. This is how we
//! machine-check protocol properties the paper assumes of Π:
//!
//! * validity/agreement on all reachable terminal configurations
//!   ([`Explorer::explore`] with a terminal predicate);
//! * obstruction-freedom: from every reachable configuration, every solo
//!   execution terminates ([`Explorer::check_solo_termination`]);
//! * x-obstruction-freedom via [`Explorer::check_group_termination`].
//!
//! # Sequential and parallel modes
//!
//! [`Explorer::explore`] is the classic single-threaded DFS with a
//! mutable check; it stops at the first violation in DFS order.
//!
//! [`Explorer::explore_parallel`] is a level-synchronised breadth-first
//! frontier over schedule prefixes: at each depth, worker threads steal
//! chunks of the frontier, expand and check configurations in parallel,
//! and pre-filter duplicates through the sharded
//! [`FingerprintCache`](crate::fingerprint::FingerprintCache). Chunk
//! results are merged in frontier order and deduplicated canonically,
//! which makes every report field — `configs_visited`, `terminals`,
//! and the first violation — **bit-for-bit identical at every thread
//! count**. The violation reported is the first in canonical schedule
//! order (shortest schedule first, then lexicographic by process id),
//! independent of which thread happened to find it.

use crate::error::ModelError;
use crate::fingerprint::FingerprintCache;
use crate::process::ProcessId;
use crate::system::System;
use crate::value::Value;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Exploration limits.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum schedule depth per branch.
    pub max_depth: usize,
    /// Maximum number of distinct configurations to visit.
    pub max_configs: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_depth: 64, max_configs: 200_000 }
    }
}

/// Result of an exploration.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Distinct configurations visited.
    pub configs_visited: usize,
    /// Terminal (all-terminated) configurations found.
    pub terminals: usize,
    /// Whether exploration was cut off by [`Limits`] or a wall-clock
    /// watchdog.
    pub truncated: bool,
    /// Set when a wall-clock watchdog cut the exploration short — a
    /// truncated search is reported, never silently passed off as
    /// exhaustive.
    pub truncation: Option<String>,
    /// The first violation found, if any: the schedule that produced it
    /// and a description. Sequential mode reports the first violation
    /// in DFS order; parallel mode reports the first in canonical
    /// (breadth-first, lexicographic) schedule order.
    pub violation: Option<(Vec<ProcessId>, String)>,
}

impl ExploreReport {
    /// Did the exploration complete with no violation?
    pub fn is_clean(&self) -> bool {
        self.violation.is_none()
    }
}

/// A check evaluated on every visited configuration by the parallel
/// explorer; returns a violation description to flag the configuration.
pub type ParallelCheck<'a> = &'a (dyn Fn(&System) -> Option<String> + Sync);

/// Bounded exhaustive explorer over schedules of a [`System`].
#[derive(Clone, Debug)]
pub struct Explorer {
    limits: Limits,
    threads: usize,
    wall_limit: Option<Duration>,
    soft_wall_limit: Option<Duration>,
    preflight: bool,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            limits: Limits::default(),
            threads: 1,
            wall_limit: None,
            soft_wall_limit: None,
            preflight: true,
        }
    }
}

impl Explorer {
    /// Creates an explorer with the given limits (single-threaded until
    /// configured with [`Explorer::with_threads`]).
    pub fn new(limits: Limits) -> Self {
        Explorer { limits, ..Explorer::default() }
    }

    /// Sets the worker-thread count used by the `*_parallel` methods.
    /// `0` means one worker per available CPU core.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Arms a wall-clock watchdog: when it fires, exploration stops
    /// gracefully with `truncated` set and a `truncation` notice in
    /// the report (results found so far are kept).
    ///
    /// The parallel explorer degrades before it dies: once 80% of the
    /// wall limit has elapsed (the *soft* deadline, tunable via
    /// [`Explorer::with_soft_wall_limit`]), each frontier level is
    /// capped to a quarter of its size — keeping the canonical prefix,
    /// so what *is* explored stays deterministic — which narrows the
    /// search instead of cutting it off mid-level at the hard stop.
    #[must_use]
    pub fn with_wall_limit(mut self, limit: Duration) -> Self {
        self.wall_limit = Some(limit);
        self
    }

    /// Overrides the soft (degradation) deadline used by the parallel
    /// explorer. Defaults to 80% of the wall limit; has no effect
    /// without [`Explorer::with_wall_limit`].
    #[must_use]
    pub fn with_soft_wall_limit(mut self, limit: Duration) -> Self {
        self.soft_wall_limit = Some(limit);
        self
    }

    /// Enables or disables the mandatory pre-flight analysis (on by
    /// default): before any schedule runs, the static linter
    /// ([`crate::analyze::preflight`]) checks the initial system and a
    /// deny-level finding aborts the exploration with
    /// [`ModelError::PreflightRejected`]. Disable only to study a
    /// deliberately ill-formed protocol.
    #[must_use]
    pub fn with_preflight(mut self, preflight: bool) -> Self {
        self.preflight = preflight;
        self
    }

    /// The configured worker-thread count (`0` = all cores).
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn run_preflight(&self, initial: &System) -> Result<(), ModelError> {
        if self.preflight {
            crate::analyze::preflight(initial, &crate::analyze::LintConfig::default())?;
        }
        Ok(())
    }

    fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, usize::from)
        }
    }

    /// Explores all schedules from `initial`, invoking `check` on every
    /// visited configuration (with the schedule so far). `check` returns
    /// a violation description to stop the search.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from stepping the system.
    pub fn explore(
        &self,
        initial: &System,
        check: &mut dyn FnMut(&System) -> Option<String>,
    ) -> Result<ExploreReport, ModelError> {
        self.run_preflight(initial)?;
        let mut report = ExploreReport {
            configs_visited: 0,
            terminals: 0,
            truncated: false,
            truncation: None,
            violation: None,
        };
        let deadline = self.wall_limit.map(|limit| Instant::now() + limit);
        let mut seen: HashSet<u64> = HashSet::new();
        // The schedule so far is not stored per stack entry: it is the
        // suffix of each configuration's (copy-on-write, shared) trace
        // past the initial configuration, recovered only when a
        // violation needs reporting.
        let base_depth = initial.trace().len();
        let mut stack: Vec<System> = vec![initial.clone()];
        while let Some(mut sys) = stack.pop() {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                report.truncated = true;
                report.truncation =
                    Some("wall-clock limit reached during DFS".into());
                break;
            }
            if !seen.insert(sys.config_fingerprint()) {
                continue;
            }
            report.configs_visited += 1;
            if report.configs_visited > self.limits.max_configs {
                report.truncated = true;
                break;
            }
            if let Some(msg) = check(&sys) {
                report.violation = Some((schedule_since(&sys, base_depth), msg));
                break;
            }
            if sys.all_terminated() {
                report.terminals += 1;
                continue;
            }
            if sys.trace().len() - base_depth >= self.limits.max_depth {
                report.truncated = true;
                continue;
            }
            // Seal the trace so each fork below copies zero events, and
            // move the parent into its last child instead of cloning it
            // one extra time.
            sys.freeze_trace();
            let live: Vec<ProcessId> = (0..sys.process_count())
                .map(ProcessId)
                .filter(|&pid| !sys.is_terminated(pid))
                .collect();
            let (&last, rest) = live.split_last().expect("not all terminated");
            for &pid in rest {
                let mut fork = sys.clone();
                fork.step(pid)?;
                stack.push(fork);
            }
            sys.step(last)?;
            stack.push(sys);
        }
        Ok(report)
    }

    /// Parallel exhaustive exploration: a level-synchronised frontier
    /// over schedule prefixes, with worker threads stealing chunks of
    /// each level and a sharded fingerprint cache deduplicating
    /// configurations.
    ///
    /// Every field of the returned report is deterministic — identical
    /// at 1, 2, or N threads — because chunk results are merged in
    /// frontier order and the violation chosen is the canonically first
    /// (shortest schedule, then lexicographically smallest).
    ///
    /// Unlike [`Explorer::explore`], the check must be `Fn + Sync`; it
    /// runs concurrently on many configurations.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from stepping the system (the
    /// canonically first error when several workers fail).
    pub fn explore_parallel(
        &self,
        initial: &System,
        check: ParallelCheck,
    ) -> Result<ExploreReport, ModelError> {
        self.explore_parallel_inner(initial, check, false)
            .map(|(report, _)| report)
    }

    fn explore_parallel_inner(
        &self,
        initial: &System,
        check: ParallelCheck,
        collect_terminals: bool,
    ) -> Result<(ExploreReport, Vec<Vec<Value>>), ModelError> {
        self.run_preflight(initial)?;
        let threads = self.resolved_threads();
        let cache = FingerprintCache::for_threads(threads);
        let mut report = ExploreReport {
            configs_visited: 0,
            terminals: 0,
            truncated: false,
            truncation: None,
            violation: None,
        };
        let start = Instant::now();
        let deadline = self.wall_limit.map(|limit| start + limit);
        // Degradation ladder, rung 1: past the soft deadline (80% of the
        // wall limit by default) each frontier level keeps only its
        // canonical prefix — breadth shrinks before the hard stop cuts
        // the search off entirely.
        let soft_deadline = self.wall_limit.map(|limit| {
            start + self.soft_wall_limit.unwrap_or(limit / 5 * 4)
        });
        let mut capped_entries = 0usize;
        let mut terminal_outputs: Vec<Vec<Value>> = Vec::new();
        let mut seen_outputs: HashSet<Vec<Value>> = HashSet::new();

        cache.insert_fingerprint(initial.config_fingerprint());
        report.configs_visited = 1;
        let base_depth = initial.trace().len();
        let mut root = initial.clone();
        root.freeze_trace();
        let mut frontier: Vec<System> = vec![root];

        while !frontier.is_empty() {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                report.truncated = true;
                report.truncation = Some(
                    "wall-clock limit reached between frontier levels".into(),
                );
                break;
            }
            if frontier.len() > 1
                && soft_deadline.is_some_and(|d| Instant::now() >= d)
            {
                let cap = (frontier.len() / 4).max(1);
                capped_entries += frontier.len() - cap;
                frontier.truncate(cap);
                report.truncated = true;
                report.truncation = Some(format!(
                    "soft wall deadline: degraded to canonical frontier \
                     prefixes ({capped_entries} entries shed so far)"
                ));
            }
            let level =
                self.run_level(&frontier, base_depth, check, &cache, threads);

            // Merge chunk results in frontier order: every aggregate
            // below is then independent of worker scheduling.
            let mut chunks = level.into_inner().expect("level results lock");
            chunks.sort_by_key(|c| c.start);
            let error = chunks
                .iter()
                .filter_map(|c| c.error.as_ref())
                .min_by_key(|(idx, _)| *idx);
            let mut violation: Option<(usize, Vec<ProcessId>, String)> = None;
            for chunk in &chunks {
                if let Some((idx, sched, msg)) = &chunk.violation {
                    if violation.as_ref().is_none_or(|(best, _, _)| idx < best) {
                        violation = Some((*idx, sched.clone(), msg.clone()));
                    }
                }
            }
            // When a level has both an error and a violation, report
            // whichever occurred at the canonically smaller frontier
            // index — this keeps the outcome identical across thread
            // counts (chunk boundaries depend on the thread count).
            if let Some((err_idx, err)) = error {
                if violation
                    .as_ref()
                    .is_none_or(|(vio_idx, _, _)| err_idx < vio_idx)
                {
                    return Err(err.clone());
                }
            }
            let mut children: Vec<(System, u64)> = Vec::new();
            for chunk in chunks {
                report.terminals += chunk.terminals;
                report.truncated |= chunk.truncated;
                if collect_terminals {
                    for outs in chunk.terminal_outputs {
                        if seen_outputs.insert(outs.clone()) {
                            terminal_outputs.push(outs);
                        }
                    }
                }
                children.extend(chunk.children);
            }
            if let Some((_, sched, msg)) = violation {
                report.violation = Some((sched, msg));
                break;
            }

            // Canonical dedup: children arrive ordered by (parent
            // frontier index, process id) — exactly the breadth-first
            // lexicographic order — so the first occurrence of each
            // configuration carries its canonical schedule (recoverable
            // from its trace).
            let mut next = Vec::new();
            for (mut sys, fp) in children {
                if !cache.insert_fingerprint(fp) {
                    continue;
                }
                if report.configs_visited >= self.limits.max_configs {
                    report.truncated = true;
                    break;
                }
                report.configs_visited += 1;
                // Seal before the next level forks this configuration.
                sys.freeze_trace();
                next.push(sys);
            }
            if report.truncated && next.is_empty() {
                break;
            }
            frontier = next;
        }
        Ok((report, terminal_outputs))
    }

    /// Runs one frontier level across `threads` workers stealing chunks
    /// through a shared atomic cursor.
    fn run_level(
        &self,
        frontier: &[System],
        base_depth: usize,
        check: ParallelCheck,
        cache: &FingerprintCache,
        threads: usize,
    ) -> Mutex<Vec<LevelChunk>> {
        let results: Mutex<Vec<LevelChunk>> = Mutex::new(Vec::new());
        let cursor = AtomicUsize::new(0);
        let chunk_size = frontier.len().div_ceil(threads * 4).max(1);
        let max_depth = self.limits.max_depth;
        std::thread::scope(|scope| {
            for _ in 0..threads.min(frontier.len()) {
                scope.spawn(|| loop {
                    let start = cursor.fetch_add(chunk_size, Ordering::Relaxed);
                    if start >= frontier.len() {
                        break;
                    }
                    let end = (start + chunk_size).min(frontier.len());
                    let chunk = expand_chunk(
                        &frontier[start..end],
                        start,
                        base_depth,
                        check,
                        cache,
                        max_depth,
                    );
                    results.lock().expect("level results lock").push(chunk);
                });
            }
        });
        results
    }

    /// Collects the set of output vectors over all reachable terminal
    /// configurations. Each vector is indexed by process.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from stepping the system.
    pub fn terminal_outputs(
        &self,
        initial: &System,
    ) -> Result<(Vec<Vec<Value>>, ExploreReport), ModelError> {
        let mut outputs: Vec<Vec<Value>> = Vec::new();
        let mut seen_outputs: HashSet<Vec<Value>> = HashSet::new();
        let report = self.explore(initial, &mut |sys| {
            if sys.all_terminated() {
                let outs: Vec<Value> =
                    sys.outputs().into_iter().map(Option::unwrap).collect();
                if seen_outputs.insert(outs.clone()) {
                    outputs.push(outs);
                }
            }
            None
        })?;
        Ok((outputs, report))
    }

    /// Parallel [`Explorer::terminal_outputs`]: same output set, same
    /// report determinism guarantees as [`Explorer::explore_parallel`].
    /// Outputs are returned in canonical first-reached order.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from stepping the system.
    pub fn terminal_outputs_parallel(
        &self,
        initial: &System,
    ) -> Result<(Vec<Vec<Value>>, ExploreReport), ModelError> {
        let (report, outputs) =
            self.explore_parallel_inner(initial, &|_| None, true)?;
        Ok((outputs, report))
    }

    /// Checks obstruction-freedom empirically: from every reachable
    /// configuration (within limits), every live process terminates when
    /// run solo for at most `solo_budget` steps.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from stepping the system.
    pub fn check_solo_termination(
        &self,
        initial: &System,
        solo_budget: usize,
    ) -> Result<ExploreReport, ModelError> {
        self.check_group_termination(initial, 1, solo_budget)
    }

    /// Parallel [`Explorer::check_solo_termination`] (Theorem 35's
    /// hypothesis checked across all cores).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from stepping the system.
    pub fn check_solo_termination_parallel(
        &self,
        initial: &System,
        solo_budget: usize,
    ) -> Result<ExploreReport, ModelError> {
        self.check_group_termination_parallel(initial, 1, solo_budget)
    }

    /// Checks x-obstruction-freedom empirically: from every reachable
    /// configuration, for every group of at most `x` live processes
    /// (rotations of the live set) and for several round-robin quanta
    /// (each member taking 1, 2, or 3 consecutive steps per turn —
    /// step-level and operation-level alternation differ for snapshot
    /// protocols), running only that group for `budget` steps
    /// terminates all of them.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from stepping the system.
    pub fn check_group_termination(
        &self,
        initial: &System,
        x: usize,
        budget: usize,
    ) -> Result<ExploreReport, ModelError> {
        self.explore(initial, &mut |sys| group_termination_check(sys, x, budget))
    }

    /// Parallel [`Explorer::check_group_termination`]: the group-run
    /// check — the expensive part — fans out across worker threads.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from stepping the system.
    pub fn check_group_termination_parallel(
        &self,
        initial: &System,
        x: usize,
        budget: usize,
    ) -> Result<ExploreReport, ModelError> {
        self.explore_parallel(initial, &move |sys| {
            group_termination_check(sys, x, budget)
        })
    }
}

/// One worker chunk's share of a frontier level.
struct LevelChunk {
    /// Index of the first frontier entry in this chunk.
    start: usize,
    terminals: usize,
    truncated: bool,
    /// Lowest-index violation within the chunk.
    violation: Option<(usize, Vec<ProcessId>, String)>,
    /// Children in (parent index, process id) order, with fingerprints.
    children: Vec<(System, u64)>,
    /// Output vectors of terminal configurations in this chunk.
    terminal_outputs: Vec<Vec<Value>>,
    /// Lowest-index step error within the chunk.
    error: Option<(usize, ModelError)>,
}

/// Checks and expands one chunk of frontier entries. `base_depth` is
/// the trace length of the initial configuration: the schedule of any
/// entry is its trace suffix past that point.
fn expand_chunk(
    entries: &[System],
    start: usize,
    base_depth: usize,
    check: ParallelCheck,
    cache: &FingerprintCache,
    max_depth: usize,
) -> LevelChunk {
    let mut out = LevelChunk {
        start,
        terminals: 0,
        truncated: false,
        violation: None,
        children: Vec::new(),
        terminal_outputs: Vec::new(),
        error: None,
    };
    for (offset, sys) in entries.iter().enumerate() {
        let idx = start + offset;
        // Panic isolation: a panicking check (or a panic while forking)
        // becomes a structured WorkerPanic at this entry's canonical
        // index instead of tearing down the worker and hanging the
        // level barrier.
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            if let Some(msg) = check(sys) {
                out.violation = Some((idx, schedule_since(sys, base_depth), msg));
                // Later entries in the chunk cannot improve on this
                // index.
                return false;
            }
            if sys.all_terminated() {
                out.terminals += 1;
                out.terminal_outputs.push(
                    sys.outputs().into_iter().map(Option::unwrap).collect(),
                );
                return true;
            }
            if sys.trace().len() - base_depth >= max_depth {
                out.truncated = true;
                return true;
            }
            for i in 0..sys.process_count() {
                let pid = ProcessId(i);
                if sys.is_terminated(pid) {
                    continue;
                }
                let mut fork = sys.clone();
                if let Err(err) = fork.step(pid) {
                    if out.error.is_none() {
                        out.error = Some((idx, err));
                    }
                    continue;
                }
                let fp = fork.config_fingerprint();
                // Concurrent pre-filter: configurations deduplicated at
                // an earlier level never reach the merge. Within-level
                // duplicates are resolved canonically by the merge
                // itself.
                if cache.contains_fingerprint(fp) {
                    continue;
                }
                out.children.push((fork, fp));
            }
            true
        }));
        match attempt {
            Ok(true) => {}
            Ok(false) => break,
            Err(payload) => {
                let panic_err = ModelError::WorkerPanic {
                    context: format!(
                        "frontier entry {idx} (schedule {:?})",
                        schedule_since(sys, base_depth)
                            .iter()
                            .map(|p| p.0)
                            .collect::<Vec<_>>()
                    ),
                    message: payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into()),
                };
                if out.error.as_ref().is_none_or(|(best, _)| idx < *best) {
                    out.error = Some((idx, panic_err));
                }
            }
        }
    }
    out
}

/// The schedule that produced `sys`: the process ids of its trace
/// events past the initial configuration's `base_depth` events.
fn schedule_since(sys: &System, base_depth: usize) -> Vec<ProcessId> {
    sys.trace().events_from(base_depth).map(|e| e.pid).collect()
}

/// The x-obstruction-freedom check run on one configuration: every
/// rotation-group of at most `x` live processes, under quanta 1/2/3,
/// must terminate within `budget` steps. Shared by the sequential and
/// parallel explorer paths.
fn group_termination_check(sys: &System, x: usize, budget: usize) -> Option<String> {
    let n = sys.process_count();
    let quanta: &[usize] = if x == 1 { &[1] } else { &[1, 2, 3] };
    let live: Vec<ProcessId> = (0..n)
        .map(ProcessId)
        .filter(|&p| !sys.is_terminated(p))
        .collect();
    if live.is_empty() {
        return None;
    }
    // Rotations of the live set give n candidate groups of size
    // ≤ x; for x = 1 this is exactly "every solo execution".
    for start in 0..live.len() {
        let group: Vec<ProcessId> = (0..x.min(live.len()))
            .map(|k| live[(start + k) % live.len()])
            .collect();
        for &quantum in quanta {
            let mut fork = sys.clone();
            let mut steps = 0;
            'run: while steps < budget {
                let mut progressed = false;
                for &p in &group {
                    for _ in 0..quantum {
                        if fork.is_terminated(p) {
                            break;
                        }
                        if fork.step(p).is_err() {
                            return Some(format!(
                                "step error during group run of {group:?}"
                            ));
                        }
                        steps += 1;
                        progressed = true;
                        if steps >= budget {
                            break 'run;
                        }
                    }
                }
                if !progressed {
                    break;
                }
            }
            if group.iter().any(|&p| !fork.is_terminated(p)) {
                return Some(format!(
                    "group {group:?} failed to terminate within {budget} \
                     steps (quantum {quantum})"
                ));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Object, ObjectId};
    use crate::process::{Process, ProtocolStep, SnapshotProcess, SnapshotProtocol};

    /// Writes its input then outputs the register's content.
    #[derive(Clone, Debug)]
    struct WriteThenRead {
        input: i64,
        wrote: bool,
    }

    impl SnapshotProtocol for WriteThenRead {
        fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
            if self.wrote {
                ProtocolStep::Output(view[0].clone())
            } else {
                self.wrote = true;
                ProtocolStep::Update(0, Value::Int(self.input))
            }
        }
        fn components(&self) -> usize {
            1
        }
    }

    fn two_process_system() -> System {
        let mk = |input| {
            Box::new(SnapshotProcess::new(
                WriteThenRead { input, wrote: false },
                ObjectId(0),
            )) as Box<dyn Process>
        };
        System::new(vec![Object::snapshot(1)], vec![mk(1), mk(2)])
    }

    #[test]
    fn explores_all_terminal_outputs() {
        let explorer = Explorer::default();
        let (outputs, report) =
            explorer.terminal_outputs(&two_process_system()).unwrap();
        assert!(!report.truncated);
        assert!(report.terminals > 0);
        // Outcomes: each process outputs the last write it saw; all four
        // combinations of {1,2}×{1,2} except impossible ones. At minimum
        // both-see-own and both-see-other occur.
        assert!(outputs.contains(&vec![Value::Int(1), Value::Int(2)]));
        assert!(outputs.len() >= 2);
    }

    #[test]
    fn parallel_terminal_outputs_match_sequential() {
        let explorer = Explorer::default().with_threads(4);
        let (seq, seq_report) =
            Explorer::default().terminal_outputs(&two_process_system()).unwrap();
        let (par, par_report) =
            explorer.terminal_outputs_parallel(&two_process_system()).unwrap();
        let mut seq_sorted: Vec<String> =
            seq.iter().map(|o| format!("{o:?}")).collect();
        let mut par_sorted: Vec<String> =
            par.iter().map(|o| format!("{o:?}")).collect();
        seq_sorted.sort();
        par_sorted.sort();
        assert_eq!(seq_sorted, par_sorted);
        assert_eq!(seq_report.configs_visited, par_report.configs_visited);
        assert_eq!(seq_report.terminals, par_report.terminals);
    }

    #[test]
    fn solo_termination_holds_for_terminating_protocol() {
        let explorer = Explorer::default();
        let report = explorer
            .check_solo_termination(&two_process_system(), 10)
            .unwrap();
        assert!(report.is_clean(), "violation: {:?}", report.violation);
    }

    #[test]
    fn parallel_solo_termination_holds() {
        let explorer = Explorer::default().with_threads(0);
        let report = explorer
            .check_solo_termination_parallel(&two_process_system(), 10)
            .unwrap();
        assert!(report.is_clean(), "violation: {:?}", report.violation);
    }

    #[test]
    fn solo_termination_catches_spinner() {
        /// Never terminates: keeps writing forever.
        #[derive(Clone, Debug)]
        struct Spinner {
            i: i64,
        }
        impl SnapshotProtocol for Spinner {
            fn on_scan(&mut self, _view: &[Value]) -> ProtocolStep {
                self.i += 1;
                ProtocolStep::Update(0, Value::Int(self.i))
            }
            fn components(&self) -> usize {
                1
            }
        }
        let sys = System::new(
            vec![Object::snapshot(1)],
            vec![Box::new(SnapshotProcess::new(Spinner { i: 0 }, ObjectId(0)))],
        );
        let explorer = Explorer::new(Limits { max_depth: 3, max_configs: 1000 });
        let report = explorer.check_solo_termination(&sys, 20).unwrap();
        assert!(!report.is_clean());
        let report = explorer
            .with_threads(2)
            .check_solo_termination_parallel(&sys, 20)
            .unwrap();
        assert!(!report.is_clean());
    }

    #[test]
    fn violation_reports_schedule() {
        let explorer = Explorer::default();
        let report = explorer
            .explore(&two_process_system(), &mut |sys| {
                sys.output(ProcessId(0)).map(|v| format!("p0 output {v}"))
            })
            .unwrap();
        let (schedule, msg) = report.violation.unwrap();
        assert!(msg.contains("p0 output"));
        assert!(!schedule.is_empty());
    }

    #[test]
    fn parallel_violation_is_canonical() {
        // The canonical (BFS-lexicographic) first schedule on which p0
        // has output: p0 runs solo for its 3 steps (scan, update, scan).
        let check = |sys: &System| {
            sys.output(ProcessId(0)).map(|v| format!("p0 output {v}"))
        };
        for threads in [1, 2, 8] {
            let explorer = Explorer::default().with_threads(threads);
            let report = explorer
                .explore_parallel(&two_process_system(), &check)
                .unwrap();
            let (schedule, msg) = report.violation.unwrap();
            assert!(msg.contains("p0 output"));
            assert_eq!(
                schedule,
                vec![ProcessId(0), ProcessId(0), ProcessId(0)],
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn dedup_bounds_visited_configs() {
        let explorer = Explorer::default();
        let report = explorer
            .explore(&two_process_system(), &mut |_| None)
            .unwrap();
        // Without dedup the tree has hundreds of nodes; with dedup the
        // distinct-configuration count is small.
        assert!(report.configs_visited < 100);
    }

    #[test]
    fn parallel_depth_truncation_matches_flag() {
        let explorer = Explorer::new(Limits { max_depth: 1, max_configs: 1000 })
            .with_threads(2);
        let report = explorer
            .explore_parallel(&two_process_system(), &|_| None)
            .unwrap();
        assert!(report.truncated);
    }

    #[test]
    fn parallel_config_budget_truncates() {
        let explorer = Explorer::new(Limits { max_depth: 64, max_configs: 3 })
            .with_threads(2);
        let report = explorer
            .explore_parallel(&two_process_system(), &|_| None)
            .unwrap();
        assert!(report.truncated);
        assert!(report.configs_visited <= 3);
    }

    #[test]
    fn panicking_check_becomes_structured_worker_panic() {
        // The check panics once p0 has produced an output. At any
        // thread count this must surface as Err(WorkerPanic) carrying
        // the canonical schedule — never a dead worker or a hang.
        let check = |sys: &System| -> Option<String> {
            assert!(
                sys.output(ProcessId(0)).is_none(),
                "injected check panic"
            );
            None
        };
        let mut messages = Vec::new();
        for threads in [1, 2, 8] {
            let explorer = Explorer::default().with_threads(threads);
            let err = explorer
                .explore_parallel(&two_process_system(), &check)
                .unwrap_err();
            match &err {
                ModelError::WorkerPanic { context, message } => {
                    assert!(context.contains("frontier entry"));
                    assert!(message.contains("injected check panic"));
                }
                other => panic!("expected WorkerPanic, got {other:?}"),
            }
            messages.push(err.to_string());
        }
        assert!(
            messages.iter().all(|m| m == &messages[0]),
            "panic report differs across thread counts: {messages:?}"
        );
    }

    #[test]
    fn wall_clock_watchdog_truncates_with_notice() {
        let explorer = Explorer::default()
            .with_threads(2)
            .with_wall_limit(Duration::from_secs(0));
        let report = explorer
            .explore_parallel(&two_process_system(), &|_| None)
            .unwrap();
        assert!(report.truncated);
        let notice = report.truncation.as_deref().unwrap();
        assert!(notice.contains("wall-clock"), "notice was: {notice}");

        let report = explorer
            .explore(&two_process_system(), &mut |_| None)
            .unwrap();
        assert!(report.truncated);
        assert!(report.truncation.is_some());
    }

    #[test]
    fn soft_deadline_degrades_frontier_instead_of_stopping() {
        // A generous hard limit with an already-expired soft deadline:
        // every level is capped to its canonical prefix, yet the search
        // still runs to completion instead of dying at the watchdog.
        let explorer = Explorer::default()
            .with_threads(2)
            .with_wall_limit(Duration::from_secs(60))
            .with_soft_wall_limit(Duration::from_secs(0));
        let report = explorer
            .explore_parallel(&two_process_system(), &|_| None)
            .unwrap();
        assert!(report.truncated);
        let notice = report.truncation.as_deref().unwrap();
        assert!(
            notice.contains("soft wall deadline"),
            "notice was: {notice}"
        );
        // The canonical prefix is kept, so the degraded search still
        // reaches p0's solo terminal run.
        assert!(report.terminals >= 1);
        let full = Explorer::default()
            .with_threads(2)
            .explore_parallel(&two_process_system(), &|_| None)
            .unwrap();
        assert!(
            report.configs_visited < full.configs_visited,
            "degradation must actually shed work: {} vs {}",
            report.configs_visited,
            full.configs_visited
        );
    }

    #[test]
    fn unlimited_explorations_carry_no_truncation_notice() {
        let report = Explorer::default()
            .explore(&two_process_system(), &mut |_| None)
            .unwrap();
        assert!(!report.truncated);
        assert!(report.truncation.is_none());
    }
}
