//! Exhaustive schedule exploration (bounded model checking).
//!
//! For small systems we can enumerate *every* interleaving up to a depth
//! bound, deduplicating indistinguishable configurations. This is how we
//! machine-check protocol properties the paper assumes of Π:
//!
//! * validity/agreement on all reachable terminal configurations
//!   ([`Explorer::explore`] with a terminal predicate);
//! * obstruction-freedom: from every reachable configuration, every solo
//!   execution terminates ([`Explorer::check_solo_termination`]);
//! * x-obstruction-freedom via [`Explorer::check_group_termination`].
//!
//! # Sequential and parallel modes
//!
//! [`Explorer::explore`] is the classic single-threaded DFS with a
//! mutable check; it stops at the first violation in DFS order.
//!
//! [`Explorer::explore_parallel`] is a level-synchronised breadth-first
//! frontier over schedule prefixes: at each depth, worker threads steal
//! chunks of the frontier, expand and check configurations in parallel,
//! and pre-filter duplicates through a shared visited-state map. Chunk
//! results are merged in frontier order and deduplicated canonically,
//! which makes every report field — `configs_visited`, `terminals`,
//! and the first violation — **bit-for-bit identical at every thread
//! count**. The violation reported is the first in canonical schedule
//! order (shortest schedule first, then lexicographic by process id),
//! independent of which thread happened to find it.
//!
//! # Partial-order reduction
//!
//! Both modes apply **happens-before-guided dynamic partial-order
//! reduction** (on by default, see [`Explorer::with_dpor`]): sleep sets
//! over schedule prefixes, driven by the exact step-commutation oracle
//! in [`crate::hb`]. Processes are deterministic, so every
//! configuration reveals each process's next operation
//! ([`System::poised`]); when the next steps of `p` and `q` commute,
//! only one order of the adjacent pair is forked and the other is put
//! to sleep. The *source set* of a configuration — the processes worth
//! branching on — is therefore its enabled set minus the sleep set
//! carried by the arriving prefix.
//!
//! The variant implemented here is sleep sets **with state matching**
//! (re-arrival at a visited configuration wakes whatever the sleep set
//! no longer justifies skipping), which prunes redundant *forks* but
//! never loses a reachable *configuration*: every state a full search
//! visits is still visited, so checks see the same states, verdicts
//! are identical with the reduction on or off, and the canonical
//! (shortest, lexicographically least) violation schedule is preserved
//! — commuting-swap–equivalent schedules have equal length, so the
//! lex-least shortest witness always survives pruning. Suppressed
//! forks are tallied in [`ExploreReport::pruned`]; the headline metric
//! is [`ExploreReport::reduction_factor`].
//!
//! # Static interference seeding
//!
//! When DPOR is active, the explorer first condenses every process's
//! solo footprint into a static [`InterferenceMatrix`]
//! (see [`crate::analyze::interfere`]) — on by default, see
//! [`Explorer::with_static`]. The matrix is a *prefilter*: pairs it
//! calls independent would not need the per-step dynamic oracle at
//! all. Because a static analyzer must over-approximate dependence
//! and never independence, the explorer audits every static
//! "independent" answer against the dynamic oracle: confirmations are
//! tallied in [`ExploreReport::prefilter_hits`], and a disagreement
//! fails the whole run closed with [`ModelError::StaticUnsound`]. The
//! sleep sets actually used are always the dynamic oracle's answers,
//! so reports are byte-for-byte identical with seeding on or off.

use crate::analyze::interfere::InterferenceMatrix;
use crate::error::ModelError;
use crate::hb::independent;
use crate::object::Operation;
use crate::process::{Poised, ProcessId};
use crate::system::System;
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Sleep and claim sets are process-id bit masks; systems with more
/// processes than this fall back to unreduced exploration (the report's
/// `dpor` flag records the fallback).
const DPOR_MAX_PROCS: usize = 32;

/// Exploration limits.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum schedule depth per branch.
    pub max_depth: usize,
    /// Maximum number of distinct configurations to visit.
    pub max_configs: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_depth: 64, max_configs: 200_000 }
    }
}

/// Result of an exploration.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Distinct configurations visited.
    pub configs_visited: usize,
    /// Terminal (all-terminated) configurations found.
    pub terminals: usize,
    /// Redundant forks suppressed by partial-order reduction: enabled
    /// steps left unexplored at some configuration because every
    /// execution through them is a commuting-swap rearrangement of one
    /// that was explored. `0` when DPOR is off.
    pub pruned: usize,
    /// Whether partial-order reduction was active for this run (the
    /// configured setting, downgraded to `false` for systems with more
    /// than 32 processes).
    pub dpor: bool,
    /// Whether a static interference matrix seeded this run (the
    /// configured setting, downgraded to `false` whenever DPOR itself
    /// is inactive — the matrix only serves the reduction).
    pub static_seed: bool,
    /// Unordered process pairs the static matrix proved independent
    /// before exploration began. `0` without static seeding.
    pub static_indep_pairs: usize,
    /// Enabled-pair evaluations the static matrix answered
    /// "independent", each audited and confirmed against the dynamic
    /// oracle. `0` without static seeding.
    pub prefilter_hits: usize,
    /// Whether exploration was cut off by [`Limits`] or a wall-clock
    /// watchdog.
    pub truncated: bool,
    /// Set when a wall-clock watchdog cut the exploration short — a
    /// truncated search is reported, never silently passed off as
    /// exhaustive.
    pub truncation: Option<String>,
    /// The first violation found, if any: the schedule that produced it
    /// and a description. Sequential mode reports the first violation
    /// in DFS order; parallel mode reports the first in canonical
    /// (breadth-first, lexicographic) schedule order.
    pub violation: Option<(Vec<ProcessId>, String)>,
}

impl ExploreReport {
    /// Did the exploration complete with no violation?
    pub fn is_clean(&self) -> bool {
        self.violation.is_none()
    }

    /// The partial-order reduction factor: how many branch expansions
    /// an unreduced search pays per expansion this search paid —
    /// `(visited + pruned) / visited`. `1.0` means no reduction.
    pub fn reduction_factor(&self) -> f64 {
        if self.configs_visited == 0 {
            return 1.0;
        }
        (self.configs_visited + self.pruned) as f64 / self.configs_visited as f64
    }
}

/// A check evaluated on every visited configuration by the parallel
/// explorer; returns a violation description to flag the configuration.
pub type ParallelCheck<'a> = &'a (dyn Fn(&System) -> Option<String> + Sync);

/// Bounded exhaustive explorer over schedules of a [`System`].
#[derive(Clone, Debug)]
pub struct Explorer {
    limits: Limits,
    threads: usize,
    wall_limit: Option<Duration>,
    soft_wall_limit: Option<Duration>,
    preflight: bool,
    dpor: bool,
    statics: bool,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            limits: Limits::default(),
            threads: 1,
            wall_limit: None,
            soft_wall_limit: None,
            preflight: true,
            dpor: true,
            statics: true,
        }
    }
}

impl Explorer {
    /// Creates an explorer with the given limits (single-threaded until
    /// configured with [`Explorer::with_threads`]).
    pub fn new(limits: Limits) -> Self {
        Explorer { limits, ..Explorer::default() }
    }

    /// Sets the worker-thread count used by the `*_parallel` methods.
    /// `0` means one worker per available CPU core.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Arms a wall-clock watchdog: when it fires, exploration stops
    /// gracefully with `truncated` set and a `truncation` notice in
    /// the report (results found so far are kept).
    ///
    /// The parallel explorer degrades before it dies: once 80% of the
    /// wall limit has elapsed (the *soft* deadline, tunable via
    /// [`Explorer::with_soft_wall_limit`]), each frontier level is
    /// capped to a quarter of its size — keeping the canonical prefix,
    /// so what *is* explored stays deterministic — which narrows the
    /// search instead of cutting it off mid-level at the hard stop.
    #[must_use]
    pub fn with_wall_limit(mut self, limit: Duration) -> Self {
        self.wall_limit = Some(limit);
        self
    }

    /// Overrides the soft (degradation) deadline used by the parallel
    /// explorer. Defaults to 80% of the wall limit; has no effect
    /// without [`Explorer::with_wall_limit`].
    #[must_use]
    pub fn with_soft_wall_limit(mut self, limit: Duration) -> Self {
        self.soft_wall_limit = Some(limit);
        self
    }

    /// Enables or disables the mandatory pre-flight analysis (on by
    /// default): before any schedule runs, the static linter
    /// ([`crate::analyze::preflight`]) checks the initial system and a
    /// deny-level finding aborts the exploration with
    /// [`ModelError::PreflightRejected`]. Disable only to study a
    /// deliberately ill-formed protocol.
    #[must_use]
    pub fn with_preflight(mut self, preflight: bool) -> Self {
        self.preflight = preflight;
        self
    }

    /// Enables or disables happens-before-guided dynamic partial-order
    /// reduction (on by default). With the reduction off every enabled
    /// process is branched on at every configuration — the escape
    /// hatch for differential testing and for auditing the reduction
    /// itself. Either way the same configurations are visited and the
    /// same verdicts reached; DPOR only suppresses redundant forks
    /// (tallied in [`ExploreReport::pruned`]).
    #[must_use]
    pub fn with_dpor(mut self, dpor: bool) -> Self {
        self.dpor = dpor;
        self
    }

    /// Enables or disables static interference seeding (on by
    /// default). When on and DPOR is active, a static
    /// [`InterferenceMatrix`] is built from the initial system's solo
    /// footprints and consulted as a prefilter ahead of the per-step
    /// dynamic oracle; every static "independent" answer is audited
    /// against the dynamic one, so verdicts and counts are identical
    /// either way and an unsound matrix fails the run closed with
    /// [`ModelError::StaticUnsound`]. Off, the dynamic oracle runs
    /// alone — the escape hatch for differential testing.
    #[must_use]
    pub fn with_static(mut self, statics: bool) -> Self {
        self.statics = statics;
        self
    }

    /// The configured worker-thread count (`0` = all cores).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether partial-order reduction is configured on.
    pub fn dpor(&self) -> bool {
        self.dpor
    }

    /// Whether static interference seeding is configured on.
    pub fn statics(&self) -> bool {
        self.statics
    }

    fn run_preflight(&self, initial: &System) -> Result<(), ModelError> {
        if self.preflight {
            crate::analyze::preflight(initial, &crate::analyze::LintConfig::default())?;
        }
        Ok(())
    }

    fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, usize::from)
        }
    }

    /// Whether DPOR is effective for `initial` (configured on and the
    /// process count fits the bit-mask representation).
    fn dpor_for(&self, initial: &System) -> bool {
        self.dpor && initial.process_count() <= DPOR_MAX_PROCS
    }

    /// Builds the static interference matrix for this run, when
    /// seeding is configured on and DPOR is effective (the matrix only
    /// serves the reduction, so there is nothing to seed without it).
    fn matrix_for(&self, initial: &System, dpor: bool) -> Option<InterferenceMatrix> {
        (dpor && self.statics)
            .then(|| InterferenceMatrix::build(initial, crate::analyze::DEFAULT_BUDGET))
    }

    /// Explores all schedules from `initial`, invoking `check` on every
    /// visited configuration (with the schedule so far). `check` returns
    /// a violation description to stop the search.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from stepping the system.
    pub fn explore(
        &self,
        initial: &System,
        check: &mut dyn FnMut(&System) -> Option<String>,
    ) -> Result<ExploreReport, ModelError> {
        self.run_preflight(initial)?;
        let dpor = self.dpor_for(initial);
        let matrix = self.matrix_for(initial, dpor);
        let mut report = ExploreReport {
            configs_visited: 0,
            terminals: 0,
            pruned: 0,
            dpor,
            static_seed: matrix.is_some(),
            static_indep_pairs: matrix.as_ref().map_or(0, InterferenceMatrix::indep_pairs),
            prefilter_hits: 0,
            truncated: false,
            truncation: None,
            violation: None,
        };
        let deadline = self.wall_limit.map(|limit| Instant::now() + limit);
        let mut seen: HashMap<u64, StateMeta> = HashMap::new();
        // The schedule so far is not stored per stack entry: it is the
        // suffix of each configuration's (copy-on-write, shared) trace
        // past the initial configuration, recovered only when a
        // violation needs reporting. Each entry carries only its sleep
        // set — the processes whose next step is a commuting swap of a
        // branch already taken elsewhere.
        let base_depth = initial.trace().len();
        let mut stack: Vec<(System, u32)> = vec![(initial.clone(), 0)];
        while let Some((mut sys, sleep)) = stack.pop() {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                report.truncated = true;
                report.truncation =
                    Some("wall-clock limit reached during DFS".into());
                break;
            }
            let fp = sys.config_fingerprint();
            let first = !seen.contains_key(&fp);
            if first {
                seen.insert(fp, StateMeta::default());
                report.configs_visited += 1;
                if report.configs_visited > self.limits.max_configs {
                    report.truncated = true;
                    break;
                }
                if let Some(msg) = check(&sys) {
                    report.violation = Some((schedule_since(&sys, base_depth), msg));
                    break;
                }
                if sys.all_terminated() {
                    report.terminals += 1;
                    continue;
                }
                if sys.trace().len() - base_depth >= self.limits.max_depth {
                    report.truncated = true;
                    continue;
                }
            } else {
                // Re-arrival. Without DPOR a duplicate has nothing
                // left to offer (every live process was branched on at
                // first arrival); with it, state matching may wake
                // processes the first arrival's sleep set suppressed —
                // but only from a prefix that can still expand at all.
                if !dpor {
                    continue;
                }
                if sys.all_terminated() {
                    continue;
                }
                if sys.trace().len() - base_depth >= self.limits.max_depth {
                    report.truncated = true;
                    continue;
                }
            }
            let masks = StepMasks::of(
                &sys,
                dpor,
                matrix.as_ref(),
                &mut report.prefilter_hits,
            )?;
            let meta = seen.get_mut(&fp).expect("visited entry exists");
            let claim = masks.enabled & !sleep & !meta.expanded;
            if dpor {
                let newly_slept = masks.enabled & sleep & !meta.expanded & !meta.slept;
                meta.slept |= newly_slept;
                report.pruned += newly_slept.count_ones() as usize;
                let reclaimed = claim & meta.slept;
                meta.slept &= !reclaimed;
                report.pruned -= reclaimed.count_ones() as usize;
            }
            meta.expanded |= claim;
            if claim == 0 {
                continue;
            }
            // Seal the trace so each fork below copies zero events, and
            // move the parent into its last child instead of cloning it
            // one extra time.
            sys.freeze_trace();
            let mut remaining = claim;
            while remaining != 0 {
                let q = remaining.trailing_zeros() as usize;
                remaining &= remaining - 1;
                let child_sleep = if dpor {
                    masks.indep[q] & (sleep | (claim & low_bits(q)))
                } else {
                    0
                };
                if remaining == 0 {
                    sys.step(ProcessId(q))?;
                    stack.push((sys, child_sleep));
                    break;
                }
                let mut fork = sys.clone();
                fork.step(ProcessId(q))?;
                stack.push((fork, child_sleep));
            }
        }
        Ok(report)
    }

    /// Parallel exhaustive exploration: a level-synchronised frontier
    /// over schedule prefixes, with worker threads stealing chunks of
    /// each level and a shared visited-state map deduplicating
    /// configurations.
    ///
    /// Every field of the returned report is deterministic — identical
    /// at 1, 2, or N threads — because chunk results are merged in
    /// frontier order and the violation chosen is the canonically first
    /// (shortest schedule, then lexicographically smallest).
    ///
    /// Unlike [`Explorer::explore`], the check must be `Fn + Sync`; it
    /// runs concurrently on many configurations.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from stepping the system (the
    /// canonically first error when several workers fail).
    pub fn explore_parallel(
        &self,
        initial: &System,
        check: ParallelCheck,
    ) -> Result<ExploreReport, ModelError> {
        self.explore_parallel_inner(initial, check, false)
            .map(|(report, _)| report)
    }

    fn explore_parallel_inner(
        &self,
        initial: &System,
        check: ParallelCheck,
        collect_terminals: bool,
    ) -> Result<(ExploreReport, Vec<Vec<Value>>), ModelError> {
        self.run_preflight(initial)?;
        let threads = self.resolved_threads();
        let dpor = self.dpor_for(initial);
        let matrix = self.matrix_for(initial, dpor);
        let mut report = ExploreReport {
            configs_visited: 0,
            terminals: 0,
            pruned: 0,
            dpor,
            static_seed: matrix.is_some(),
            static_indep_pairs: matrix.as_ref().map_or(0, InterferenceMatrix::indep_pairs),
            prefilter_hits: 0,
            truncated: false,
            truncation: None,
            violation: None,
        };
        let start = Instant::now();
        let deadline = self.wall_limit.map(|limit| start + limit);
        // Degradation ladder, rung 1: past the soft deadline (80% of the
        // wall limit by default) each frontier level keeps only its
        // canonical prefix — breadth shrinks before the hard stop cuts
        // the search off entirely.
        let soft_deadline = self.wall_limit.map(|limit| {
            start + self.soft_wall_limit.unwrap_or(limit / 5 * 4)
        });
        let mut capped_entries = 0usize;
        let mut terminal_outputs: Vec<Vec<Value>> = Vec::new();
        let mut seen_outputs: HashSet<Vec<Value>> = HashSet::new();

        // Workers read the visited map of all *previous* levels as a
        // duplicate pre-filter; the merge below is the only writer, and
        // runs strictly between levels.
        let mut visited: HashMap<u64, StateMeta> = HashMap::new();
        let root_masks = StepMasks::of(
            initial,
            dpor,
            matrix.as_ref(),
            &mut report.prefilter_hits,
        )?;
        visited.insert(
            initial.config_fingerprint(),
            StateMeta { expanded: root_masks.enabled, slept: 0 },
        );
        report.configs_visited = 1;
        let base_depth = initial.trace().len();
        let mut root = initial.clone();
        root.freeze_trace();
        let mut frontier: Vec<Prefix> = vec![Prefix {
            sys: root,
            sleep: 0,
            claim: root_masks.enabled,
            first: true,
        }];

        while !frontier.is_empty() {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                report.truncated = true;
                report.truncation = Some(
                    "wall-clock limit reached between frontier levels".into(),
                );
                break;
            }
            if frontier.len() > 1
                && soft_deadline.is_some_and(|d| Instant::now() >= d)
            {
                let cap = (frontier.len() / 4).max(1);
                capped_entries += frontier.len() - cap;
                frontier.truncate(cap);
                report.truncated = true;
                report.truncation = Some(format!(
                    "soft wall deadline: degraded to canonical frontier \
                     prefixes ({capped_entries} entries shed so far)"
                ));
            }
            let level = self.run_level(
                &frontier, base_depth, check, &visited, threads, dpor,
                matrix.as_ref(),
            );

            // Merge chunk results in frontier order: every aggregate
            // below is then independent of worker scheduling.
            let mut chunks = level.into_inner().expect("level results lock");
            chunks.sort_by_key(|c| c.start);
            let error = chunks
                .iter()
                .filter_map(|c| c.error.as_ref())
                .min_by_key(|(idx, _)| *idx);
            let mut violation: Option<(usize, Vec<ProcessId>, String)> = None;
            for chunk in &chunks {
                if let Some((idx, sched, msg)) = &chunk.violation {
                    if violation.as_ref().is_none_or(|(best, _, _)| idx < best) {
                        violation = Some((*idx, sched.clone(), msg.clone()));
                    }
                }
            }
            // When a level has both an error and a violation, report
            // whichever occurred at the canonically smaller frontier
            // index — this keeps the outcome identical across thread
            // counts (chunk boundaries depend on the thread count).
            if let Some((err_idx, err)) = error {
                if violation
                    .as_ref()
                    .is_none_or(|(vio_idx, _, _)| err_idx < vio_idx)
                {
                    return Err(err.clone());
                }
            }
            let mut children: Vec<Child> = Vec::new();
            for chunk in chunks {
                report.terminals += chunk.terminals;
                report.truncated |= chunk.truncated;
                report.prefilter_hits += chunk.prefilter_hits;
                if collect_terminals {
                    for outs in chunk.terminal_outputs {
                        if seen_outputs.insert(outs.clone()) {
                            terminal_outputs.push(outs);
                        }
                    }
                }
                children.extend(chunk.children);
            }
            if let Some((_, sched, msg)) = violation {
                report.violation = Some((sched, msg));
                break;
            }

            // Canonical dedup: children arrive ordered by (parent
            // frontier index, process id) — exactly the breadth-first
            // lexicographic order — so the first occurrence of each
            // configuration carries its canonical schedule (recoverable
            // from its trace). Under DPOR, a re-arrival may still wake
            // processes its sleep set no longer covers (state
            // matching): it re-enters the frontier as a non-`first`
            // prefix that is expanded but not re-counted or re-checked.
            let mut next = Vec::new();
            for child in children {
                let Child { mut sys, fp, sleep, enabled } = child;
                match visited.get_mut(&fp) {
                    None => {
                        if report.configs_visited >= self.limits.max_configs {
                            report.truncated = true;
                            break;
                        }
                        report.configs_visited += 1;
                        let claim = enabled & !sleep;
                        let slept = if dpor { enabled & sleep } else { 0 };
                        report.pruned += slept.count_ones() as usize;
                        visited.insert(fp, StateMeta { expanded: claim, slept });
                        // Seal before the next level forks this
                        // configuration.
                        sys.freeze_trace();
                        next.push(Prefix { sys, sleep, claim, first: true });
                    }
                    Some(meta) => {
                        if !dpor {
                            continue;
                        }
                        let claim = enabled & !sleep & !meta.expanded;
                        let newly_slept =
                            enabled & sleep & !meta.expanded & !meta.slept;
                        meta.slept |= newly_slept;
                        report.pruned += newly_slept.count_ones() as usize;
                        let reclaimed = claim & meta.slept;
                        meta.slept &= !reclaimed;
                        report.pruned -= reclaimed.count_ones() as usize;
                        meta.expanded |= claim;
                        if claim != 0 {
                            sys.freeze_trace();
                            next.push(Prefix { sys, sleep, claim, first: false });
                        }
                    }
                }
            }
            if report.truncated && next.is_empty() {
                break;
            }
            frontier = next;
        }
        Ok((report, terminal_outputs))
    }

    /// Runs one frontier level across `threads` workers stealing chunks
    /// through a shared atomic cursor.
    #[allow(clippy::too_many_arguments)]
    fn run_level(
        &self,
        frontier: &[Prefix],
        base_depth: usize,
        check: ParallelCheck,
        visited: &HashMap<u64, StateMeta>,
        threads: usize,
        dpor: bool,
        matrix: Option<&InterferenceMatrix>,
    ) -> Mutex<Vec<LevelChunk>> {
        let results: Mutex<Vec<LevelChunk>> = Mutex::new(Vec::new());
        let cursor = AtomicUsize::new(0);
        let chunk_size = frontier.len().div_ceil(threads * 4).max(1);
        let max_depth = self.limits.max_depth;
        std::thread::scope(|scope| {
            for _ in 0..threads.min(frontier.len()) {
                scope.spawn(|| loop {
                    let start = cursor.fetch_add(chunk_size, Ordering::Relaxed);
                    if start >= frontier.len() {
                        break;
                    }
                    let end = (start + chunk_size).min(frontier.len());
                    let chunk = expand_chunk(
                        &frontier[start..end],
                        start,
                        base_depth,
                        check,
                        visited,
                        max_depth,
                        dpor,
                        matrix,
                    );
                    results.lock().expect("level results lock").push(chunk);
                });
            }
        });
        results
    }

    /// Collects the set of output vectors over all reachable terminal
    /// configurations. Each vector is indexed by process.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from stepping the system.
    pub fn terminal_outputs(
        &self,
        initial: &System,
    ) -> Result<(Vec<Vec<Value>>, ExploreReport), ModelError> {
        let mut outputs: Vec<Vec<Value>> = Vec::new();
        let mut seen_outputs: HashSet<Vec<Value>> = HashSet::new();
        let report = self.explore(initial, &mut |sys| {
            if sys.all_terminated() {
                let outs: Vec<Value> =
                    sys.outputs().into_iter().map(Option::unwrap).collect();
                if seen_outputs.insert(outs.clone()) {
                    outputs.push(outs);
                }
            }
            None
        })?;
        Ok((outputs, report))
    }

    /// Parallel [`Explorer::terminal_outputs`]: same output set, same
    /// report determinism guarantees as [`Explorer::explore_parallel`].
    /// Outputs are returned in canonical first-reached order.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from stepping the system.
    pub fn terminal_outputs_parallel(
        &self,
        initial: &System,
    ) -> Result<(Vec<Vec<Value>>, ExploreReport), ModelError> {
        let (report, outputs) =
            self.explore_parallel_inner(initial, &|_| None, true)?;
        Ok((outputs, report))
    }

    /// Checks obstruction-freedom empirically: from every reachable
    /// configuration (within limits), every live process terminates when
    /// run solo for at most `solo_budget` steps.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from stepping the system.
    pub fn check_solo_termination(
        &self,
        initial: &System,
        solo_budget: usize,
    ) -> Result<ExploreReport, ModelError> {
        self.check_group_termination(initial, 1, solo_budget)
    }

    /// Parallel [`Explorer::check_solo_termination`] (Theorem 35's
    /// hypothesis checked across all cores).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from stepping the system.
    pub fn check_solo_termination_parallel(
        &self,
        initial: &System,
        solo_budget: usize,
    ) -> Result<ExploreReport, ModelError> {
        self.check_group_termination_parallel(initial, 1, solo_budget)
    }

    /// Checks x-obstruction-freedom empirically: from every reachable
    /// configuration, for every group of at most `x` live processes
    /// (rotations of the live set) and for several round-robin quanta
    /// (each member taking 1, 2, or 3 consecutive steps per turn —
    /// step-level and operation-level alternation differ for snapshot
    /// protocols), running only that group for `budget` steps
    /// terminates all of them.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from stepping the system.
    pub fn check_group_termination(
        &self,
        initial: &System,
        x: usize,
        budget: usize,
    ) -> Result<ExploreReport, ModelError> {
        self.explore(initial, &mut |sys| group_termination_check(sys, x, budget))
    }

    /// Parallel [`Explorer::check_group_termination`]: the group-run
    /// check — the expensive part — fans out across worker threads.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from stepping the system.
    pub fn check_group_termination_parallel(
        &self,
        initial: &System,
        x: usize,
        budget: usize,
    ) -> Result<ExploreReport, ModelError> {
        self.explore_parallel(initial, &move |sys| {
            group_termination_check(sys, x, budget)
        })
    }
}

/// The set of bits below bit `q`.
fn low_bits(q: usize) -> u32 {
    (1u32 << q) - 1
}

/// Per-configuration bookkeeping for sleep-set pruning with state
/// matching, keyed by configuration fingerprint.
#[derive(Clone, Copy, Default)]
struct StateMeta {
    /// Processes already branched on from this configuration, over all
    /// arrivals.
    expanded: u32,
    /// Enabled processes a sleep set suppressed here, currently
    /// counted in `pruned` (a bit moves out again if a later arrival
    /// wakes and expands it).
    slept: u32,
}

/// The poised-step view of one configuration as process-id bit masks:
/// which processes are live, and which pairs of next operations
/// commute.
struct StepMasks {
    /// Live (non-terminated) processes.
    enabled: u32,
    /// Per process `q`: the processes whose next operation commutes
    /// with `q`'s (empty vector when DPOR is off — never read).
    indep: Vec<u32>,
}

impl StepMasks {
    /// Computes the masks for one configuration. With a `matrix`
    /// present, every enabled pair the matrix calls statically
    /// independent is audited against the dynamic oracle: a confirmed
    /// answer bumps `prefilter_hits`, a contradicted one fails closed
    /// with [`ModelError::StaticUnsound`] (the static pass may
    /// over-approximate dependence, never independence). The masks
    /// actually used are always the dynamic oracle's answers, so the
    /// exploration is identical with or without the matrix.
    fn of(
        sys: &System,
        dpor: bool,
        matrix: Option<&InterferenceMatrix>,
        prefilter_hits: &mut usize,
    ) -> Result<StepMasks, ModelError> {
        let n = sys.process_count();
        let mut ops: Vec<Option<Operation>> = Vec::with_capacity(n);
        let mut enabled = 0u32;
        for i in 0..n {
            match sys.poised(ProcessId(i)) {
                Poised::Step(op) => {
                    if i < DPOR_MAX_PROCS {
                        enabled |= 1 << i;
                    }
                    ops.push(Some(op));
                }
                Poised::Output(_) => ops.push(None),
            }
        }
        let mut indep = Vec::new();
        if dpor {
            indep = vec![0u32; n];
            for i in 0..n {
                let Some(op_i) = &ops[i] else { continue };
                for j in i + 1..n {
                    let Some(op_j) = &ops[j] else { continue };
                    let dynamic = independent(op_i, op_j);
                    if matrix.is_some_and(|m| m.independent(i, j)) {
                        if dynamic {
                            *prefilter_hits += 1;
                        } else {
                            return Err(ModelError::StaticUnsound {
                                p: i,
                                q: j,
                                ops: format!("{op_i:?} vs {op_j:?}"),
                            });
                        }
                    }
                    if dynamic {
                        indep[i] |= 1 << j;
                        indep[j] |= 1 << i;
                    }
                }
            }
        }
        Ok(StepMasks { enabled, indep })
    }
}

/// One schedule prefix awaiting expansion in the parallel frontier.
struct Prefix {
    sys: System,
    /// Sleep set this arrival carries (always 0 with DPOR off).
    sleep: u32,
    /// Processes to branch on from this entry, claimed canonically at
    /// merge time (ignored with DPOR off: every live process forks).
    claim: u32,
    /// First arrival at this configuration: it is counted, checked,
    /// and eligible to be a terminal. Re-arrivals only expand newly
    /// woken claims.
    first: bool,
}

/// One freshly forked configuration travelling from a worker to the
/// canonical merge.
struct Child {
    sys: System,
    fp: u64,
    /// Sleep set the fork inherited (0 with DPOR off).
    sleep: u32,
    /// Live processes of the fork (0 with DPOR off — never read).
    enabled: u32,
}

/// One worker chunk's share of a frontier level.
struct LevelChunk {
    /// Index of the first frontier entry in this chunk.
    start: usize,
    terminals: usize,
    truncated: bool,
    /// Lowest-index violation within the chunk.
    violation: Option<(usize, Vec<ProcessId>, String)>,
    /// Children in (parent index, process id) order, with fingerprints.
    children: Vec<Child>,
    /// Output vectors of terminal configurations in this chunk.
    terminal_outputs: Vec<Vec<Value>>,
    /// Lowest-index step error within the chunk.
    error: Option<(usize, ModelError)>,
    /// Static-prefilter confirmations across the chunk's entries.
    prefilter_hits: usize,
}

/// Checks and expands one chunk of frontier entries. `base_depth` is
/// the trace length of the initial configuration: the schedule of any
/// entry is its trace suffix past that point.
#[allow(clippy::too_many_arguments)]
fn expand_chunk(
    entries: &[Prefix],
    start: usize,
    base_depth: usize,
    check: ParallelCheck,
    visited: &HashMap<u64, StateMeta>,
    max_depth: usize,
    dpor: bool,
    matrix: Option<&InterferenceMatrix>,
) -> LevelChunk {
    let mut out = LevelChunk {
        start,
        terminals: 0,
        truncated: false,
        violation: None,
        children: Vec::new(),
        terminal_outputs: Vec::new(),
        error: None,
        prefilter_hits: 0,
    };
    for (offset, entry) in entries.iter().enumerate() {
        let idx = start + offset;
        let sys = &entry.sys;
        // Panic isolation: a panicking check (or a panic while forking)
        // becomes a structured WorkerPanic at this entry's canonical
        // index instead of tearing down the worker and hanging the
        // level barrier.
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            if entry.first {
                if let Some(msg) = check(sys) {
                    out.violation = Some((idx, schedule_since(sys, base_depth), msg));
                    // Later entries in the chunk cannot improve on this
                    // index.
                    return false;
                }
                if sys.all_terminated() {
                    out.terminals += 1;
                    out.terminal_outputs.push(
                        sys.outputs().into_iter().map(Option::unwrap).collect(),
                    );
                    return true;
                }
            }
            if sys.trace().len() - base_depth >= max_depth {
                out.truncated = true;
                return true;
            }
            if dpor {
                let masks = match StepMasks::of(
                    sys,
                    true,
                    matrix,
                    &mut out.prefilter_hits,
                ) {
                    Ok(masks) => masks,
                    Err(err) => {
                        // An unsound matrix fails the entry closed; the
                        // canonical merge picks the lowest-index error
                        // across chunks, keeping the outcome identical
                        // at every thread count.
                        if out.error.is_none() {
                            out.error = Some((idx, err));
                        }
                        return true;
                    }
                };
                let mut remaining = entry.claim;
                while remaining != 0 {
                    let q = remaining.trailing_zeros() as usize;
                    remaining &= remaining - 1;
                    let mut fork = sys.clone();
                    if let Err(err) = fork.step(ProcessId(q)) {
                        if out.error.is_none() {
                            out.error = Some((idx, err));
                        }
                        continue;
                    }
                    let fp = fork.config_fingerprint();
                    let sleep =
                        masks.indep[q] & (entry.sleep | (entry.claim & low_bits(q)));
                    // Only stepping q can change liveness: the fork's
                    // enabled set is the parent's, minus q if it just
                    // terminated.
                    let enabled = if fork.is_terminated(ProcessId(q)) {
                        masks.enabled & !(1 << q)
                    } else {
                        masks.enabled
                    };
                    // Concurrent pre-filter against the previous
                    // levels' visited map: drop the fork only when the
                    // merge could not possibly claim anything from it.
                    // (`expanded` can only have grown since the map was
                    // frozen, so this never drops a live claim.)
                    if let Some(meta) = visited.get(&fp) {
                        if enabled & !sleep & !meta.expanded == 0 {
                            continue;
                        }
                    }
                    out.children.push(Child { sys: fork, fp, sleep, enabled });
                }
            } else {
                for i in 0..sys.process_count() {
                    let pid = ProcessId(i);
                    if sys.is_terminated(pid) {
                        continue;
                    }
                    let mut fork = sys.clone();
                    if let Err(err) = fork.step(pid) {
                        if out.error.is_none() {
                            out.error = Some((idx, err));
                        }
                        continue;
                    }
                    let fp = fork.config_fingerprint();
                    // Concurrent pre-filter: configurations
                    // deduplicated at an earlier level never reach the
                    // merge. Within-level duplicates are resolved
                    // canonically by the merge itself.
                    if visited.contains_key(&fp) {
                        continue;
                    }
                    out.children.push(Child { sys: fork, fp, sleep: 0, enabled: 0 });
                }
            }
            true
        }));
        match attempt {
            Ok(true) => {}
            Ok(false) => break,
            Err(payload) => {
                let panic_err = ModelError::WorkerPanic {
                    context: format!(
                        "frontier entry {idx} (schedule {:?})",
                        schedule_since(sys, base_depth)
                            .iter()
                            .map(|p| p.0)
                            .collect::<Vec<_>>()
                    ),
                    message: payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into()),
                };
                if out.error.as_ref().is_none_or(|(best, _)| idx < *best) {
                    out.error = Some((idx, panic_err));
                }
            }
        }
    }
    out
}

/// The schedule that produced `sys`: the process ids of its trace
/// events past the initial configuration's `base_depth` events.
fn schedule_since(sys: &System, base_depth: usize) -> Vec<ProcessId> {
    sys.trace().events_from(base_depth).map(|e| e.pid).collect()
}

/// The x-obstruction-freedom check run on one configuration: every
/// rotation-group of at most `x` live processes, under quanta 1/2/3,
/// must terminate within `budget` steps. Shared by the sequential and
/// parallel explorer paths.
fn group_termination_check(sys: &System, x: usize, budget: usize) -> Option<String> {
    let n = sys.process_count();
    let quanta: &[usize] = if x == 1 { &[1] } else { &[1, 2, 3] };
    let live: Vec<ProcessId> = (0..n)
        .map(ProcessId)
        .filter(|&p| !sys.is_terminated(p))
        .collect();
    if live.is_empty() {
        return None;
    }
    // Rotations of the live set give n candidate groups of size
    // ≤ x; for x = 1 this is exactly "every solo execution".
    for start in 0..live.len() {
        let group: Vec<ProcessId> = (0..x.min(live.len()))
            .map(|k| live[(start + k) % live.len()])
            .collect();
        for &quantum in quanta {
            let mut fork = sys.clone();
            let mut steps = 0;
            'run: while steps < budget {
                let mut progressed = false;
                for &p in &group {
                    for _ in 0..quantum {
                        if fork.is_terminated(p) {
                            break;
                        }
                        if fork.step(p).is_err() {
                            return Some(format!(
                                "step error during group run of {group:?}"
                            ));
                        }
                        steps += 1;
                        progressed = true;
                        if steps >= budget {
                            break 'run;
                        }
                    }
                }
                if !progressed {
                    break;
                }
            }
            if group.iter().any(|&p| !fork.is_terminated(p)) {
                return Some(format!(
                    "group {group:?} failed to terminate within {budget} \
                     steps (quantum {quantum})"
                ));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Object, ObjectId, Response};
    use crate::process::{Process, ProtocolStep, SnapshotProcess, SnapshotProtocol};

    /// Writes its input then outputs the register's content.
    #[derive(Clone, Debug)]
    struct WriteThenRead {
        input: i64,
        wrote: bool,
    }

    impl SnapshotProtocol for WriteThenRead {
        fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
            if self.wrote {
                ProtocolStep::Output(view[0].clone())
            } else {
                self.wrote = true;
                ProtocolStep::Update(0, Value::Int(self.input))
            }
        }
        fn components(&self) -> usize {
            1
        }
    }

    fn two_process_system() -> System {
        let mk = |input| {
            Box::new(SnapshotProcess::new(
                WriteThenRead { input, wrote: false },
                ObjectId(0),
            )) as Box<dyn Process>
        };
        System::new(vec![Object::snapshot(1)], vec![mk(1), mk(2)])
    }

    /// `n` processes that each write their own snapshot component then
    /// output: heavy on commuting (different-component) updates, so
    /// DPOR should prune a lot.
    fn independent_writers(n: usize) -> System {
        #[derive(Clone, Debug)]
        struct OwnSlot {
            slot: usize,
            wrote: bool,
        }
        impl SnapshotProtocol for OwnSlot {
            fn on_scan(&mut self, _view: &[Value]) -> ProtocolStep {
                if self.wrote {
                    ProtocolStep::Output(Value::Int(self.slot as i64))
                } else {
                    self.wrote = true;
                    ProtocolStep::Update(self.slot, Value::Int(1))
                }
            }
            fn components(&self) -> usize {
                4
            }
        }
        let processes = (0..n)
            .map(|slot| {
                Box::new(SnapshotProcess::new(
                    OwnSlot { slot, wrote: false },
                    ObjectId(0),
                )) as Box<dyn Process>
            })
            .collect();
        System::new(vec![Object::snapshot(4)], processes)
    }

    /// Writes its own snapshot component without ever scanning, then
    /// outputs: processes are *statically* independent (disjoint write
    /// sets, no reads), so the interference matrix can actually answer
    /// pair queries ahead of the dynamic oracle.
    #[derive(Clone, Debug)]
    struct BlindWriter {
        slot: usize,
        wrote: bool,
    }

    impl Process for BlindWriter {
        fn poised(&self) -> Poised {
            if self.wrote {
                Poised::Output(Value::Int(self.slot as i64))
            } else {
                Poised::Step(Operation::Update {
                    obj: ObjectId(0),
                    component: self.slot,
                    value: Value::Int(1),
                })
            }
        }
        fn receive(&mut self, _resp: Response) {
            self.wrote = true;
        }
        fn boxed_clone(&self) -> Box<dyn Process> {
            Box::new(self.clone())
        }
    }

    fn blind_writers(n: usize) -> System {
        let processes = (0..n)
            .map(|slot| {
                Box::new(BlindWriter { slot, wrote: false }) as Box<dyn Process>
            })
            .collect();
        System::new(vec![Object::snapshot(n)], processes)
    }

    #[test]
    fn explores_all_terminal_outputs() {
        let explorer = Explorer::default();
        let (outputs, report) =
            explorer.terminal_outputs(&two_process_system()).unwrap();
        assert!(!report.truncated);
        assert!(report.terminals > 0);
        // Outcomes: each process outputs the last write it saw; all four
        // combinations of {1,2}×{1,2} except impossible ones. At minimum
        // both-see-own and both-see-other occur.
        assert!(outputs.contains(&vec![Value::Int(1), Value::Int(2)]));
        assert!(outputs.len() >= 2);
    }

    #[test]
    fn parallel_terminal_outputs_match_sequential() {
        let explorer = Explorer::default().with_threads(4);
        let (seq, seq_report) =
            Explorer::default().terminal_outputs(&two_process_system()).unwrap();
        let (par, par_report) =
            explorer.terminal_outputs_parallel(&two_process_system()).unwrap();
        let mut seq_sorted: Vec<String> =
            seq.iter().map(|o| format!("{o:?}")).collect();
        let mut par_sorted: Vec<String> =
            par.iter().map(|o| format!("{o:?}")).collect();
        seq_sorted.sort();
        par_sorted.sort();
        assert_eq!(seq_sorted, par_sorted);
        assert_eq!(seq_report.configs_visited, par_report.configs_visited);
        assert_eq!(seq_report.terminals, par_report.terminals);
    }

    #[test]
    fn dpor_visits_the_same_states_and_verdicts() {
        // The cornerstone contract: sleep sets prune forks, never
        // configurations. On and off must agree on every count except
        // `pruned`, in both modes.
        for sys in [two_process_system(), independent_writers(3)] {
            let on = Explorer::default();
            let off = Explorer::default().with_dpor(false);
            let (out_on, rep_on) = on.terminal_outputs(&sys).unwrap();
            let (out_off, rep_off) = off.terminal_outputs(&sys).unwrap();
            assert_eq!(rep_on.configs_visited, rep_off.configs_visited);
            assert_eq!(rep_on.terminals, rep_off.terminals);
            let sort = |v: &[Vec<Value>]| {
                let mut s: Vec<String> = v.iter().map(|o| format!("{o:?}")).collect();
                s.sort();
                s
            };
            assert_eq!(sort(&out_on), sort(&out_off));
            assert!(rep_on.dpor);
            assert!(!rep_off.dpor);
            assert_eq!(rep_off.pruned, 0);

            let par_on = on.with_threads(4).explore_parallel(&sys, &|_| None).unwrap();
            let par_off =
                off.with_threads(4).explore_parallel(&sys, &|_| None).unwrap();
            assert_eq!(par_on.configs_visited, par_off.configs_visited);
            assert_eq!(par_on.terminals, par_off.terminals);
            assert_eq!(par_off.pruned, 0);
        }
    }

    #[test]
    fn dpor_prunes_commuting_writers() {
        // Three writers to three different components: almost every
        // adjacent pair commutes, so the reduction must actually fire.
        let sys = independent_writers(3);
        let report = Explorer::default().explore(&sys, &mut |_| None).unwrap();
        assert!(report.dpor);
        assert!(report.pruned > 0, "no forks pruned: {report:?}");
        assert!(report.reduction_factor() > 1.0);
        let par = Explorer::default()
            .with_threads(4)
            .explore_parallel(&sys, &|_| None)
            .unwrap();
        assert!(par.pruned > 0);
    }

    #[test]
    fn parallel_dpor_report_is_thread_count_invariant() {
        let sys = independent_writers(3);
        let base = Explorer::default()
            .with_threads(1)
            .explore_parallel(&sys, &|_| None)
            .unwrap();
        for threads in [2, 4, 8] {
            let rep = Explorer::default()
                .with_threads(threads)
                .explore_parallel(&sys, &|_| None)
                .unwrap();
            assert_eq!(rep.configs_visited, base.configs_visited, "t={threads}");
            assert_eq!(rep.terminals, base.terminals, "t={threads}");
            assert_eq!(rep.pruned, base.pruned, "t={threads}");
        }
    }

    #[test]
    fn solo_termination_holds_for_terminating_protocol() {
        let explorer = Explorer::default();
        let report = explorer
            .check_solo_termination(&two_process_system(), 10)
            .unwrap();
        assert!(report.is_clean(), "violation: {:?}", report.violation);
    }

    #[test]
    fn parallel_solo_termination_holds() {
        let explorer = Explorer::default().with_threads(0);
        let report = explorer
            .check_solo_termination_parallel(&two_process_system(), 10)
            .unwrap();
        assert!(report.is_clean(), "violation: {:?}", report.violation);
    }

    #[test]
    fn solo_termination_catches_spinner() {
        /// Never terminates: keeps writing forever.
        #[derive(Clone, Debug)]
        struct Spinner {
            i: i64,
        }
        impl SnapshotProtocol for Spinner {
            fn on_scan(&mut self, _view: &[Value]) -> ProtocolStep {
                self.i += 1;
                ProtocolStep::Update(0, Value::Int(self.i))
            }
            fn components(&self) -> usize {
                1
            }
        }
        let sys = System::new(
            vec![Object::snapshot(1)],
            vec![Box::new(SnapshotProcess::new(Spinner { i: 0 }, ObjectId(0)))],
        );
        let explorer = Explorer::new(Limits { max_depth: 3, max_configs: 1000 });
        let report = explorer.check_solo_termination(&sys, 20).unwrap();
        assert!(!report.is_clean());
        let report = explorer
            .with_threads(2)
            .check_solo_termination_parallel(&sys, 20)
            .unwrap();
        assert!(!report.is_clean());
    }

    #[test]
    fn violation_reports_schedule() {
        let explorer = Explorer::default();
        let report = explorer
            .explore(&two_process_system(), &mut |sys| {
                sys.output(ProcessId(0)).map(|v| format!("p0 output {v}"))
            })
            .unwrap();
        let (schedule, msg) = report.violation.unwrap();
        assert!(msg.contains("p0 output"));
        assert!(!schedule.is_empty());
    }

    #[test]
    fn parallel_violation_is_canonical() {
        // The canonical (BFS-lexicographic) first schedule on which p0
        // has output: p0 runs solo for its 3 steps (scan, update, scan).
        let check = |sys: &System| {
            sys.output(ProcessId(0)).map(|v| format!("p0 output {v}"))
        };
        for threads in [1, 2, 8] {
            for dpor in [true, false] {
                let explorer =
                    Explorer::default().with_threads(threads).with_dpor(dpor);
                let report = explorer
                    .explore_parallel(&two_process_system(), &check)
                    .unwrap();
                let (schedule, msg) = report.violation.unwrap();
                assert!(msg.contains("p0 output"));
                assert_eq!(
                    schedule,
                    vec![ProcessId(0), ProcessId(0), ProcessId(0)],
                    "threads = {threads}, dpor = {dpor}"
                );
            }
        }
    }

    #[test]
    fn dedup_bounds_visited_configs() {
        let explorer = Explorer::default();
        let report = explorer
            .explore(&two_process_system(), &mut |_| None)
            .unwrap();
        // Without dedup the tree has hundreds of nodes; with dedup the
        // distinct-configuration count is small.
        assert!(report.configs_visited < 100);
    }

    #[test]
    fn parallel_depth_truncation_matches_flag() {
        let explorer = Explorer::new(Limits { max_depth: 1, max_configs: 1000 })
            .with_threads(2);
        let report = explorer
            .explore_parallel(&two_process_system(), &|_| None)
            .unwrap();
        assert!(report.truncated);
    }

    #[test]
    fn parallel_config_budget_truncates() {
        let explorer = Explorer::new(Limits { max_depth: 64, max_configs: 3 })
            .with_threads(2);
        let report = explorer
            .explore_parallel(&two_process_system(), &|_| None)
            .unwrap();
        assert!(report.truncated);
        assert!(report.configs_visited <= 3);
    }

    #[test]
    fn panicking_check_becomes_structured_worker_panic() {
        // The check panics once p0 has produced an output. At any
        // thread count this must surface as Err(WorkerPanic) carrying
        // the canonical schedule — never a dead worker or a hang.
        let check = |sys: &System| -> Option<String> {
            assert!(
                sys.output(ProcessId(0)).is_none(),
                "injected check panic"
            );
            None
        };
        let mut messages = Vec::new();
        for threads in [1, 2, 8] {
            let explorer = Explorer::default().with_threads(threads);
            let err = explorer
                .explore_parallel(&two_process_system(), &check)
                .unwrap_err();
            match &err {
                ModelError::WorkerPanic { context, message } => {
                    assert!(context.contains("frontier entry"));
                    assert!(message.contains("injected check panic"));
                }
                other => panic!("expected WorkerPanic, got {other:?}"),
            }
            messages.push(err.to_string());
        }
        assert!(
            messages.iter().all(|m| m == &messages[0]),
            "panic report differs across thread counts: {messages:?}"
        );
    }

    #[test]
    fn wall_clock_watchdog_truncates_with_notice() {
        let explorer = Explorer::default()
            .with_threads(2)
            .with_wall_limit(Duration::from_secs(0));
        let report = explorer
            .explore_parallel(&two_process_system(), &|_| None)
            .unwrap();
        assert!(report.truncated);
        let notice = report.truncation.as_deref().unwrap();
        assert!(notice.contains("wall-clock"), "notice was: {notice}");

        let report = explorer
            .explore(&two_process_system(), &mut |_| None)
            .unwrap();
        assert!(report.truncated);
        assert!(report.truncation.is_some());
    }

    #[test]
    fn soft_deadline_degrades_frontier_instead_of_stopping() {
        // A generous hard limit with an already-expired soft deadline:
        // every level is capped to its canonical prefix, yet the search
        // still runs to completion instead of dying at the watchdog.
        let explorer = Explorer::default()
            .with_threads(2)
            .with_wall_limit(Duration::from_secs(60))
            .with_soft_wall_limit(Duration::from_secs(0));
        let report = explorer
            .explore_parallel(&two_process_system(), &|_| None)
            .unwrap();
        assert!(report.truncated);
        let notice = report.truncation.as_deref().unwrap();
        assert!(
            notice.contains("soft wall deadline"),
            "notice was: {notice}"
        );
        // The canonical prefix is kept, so the degraded search still
        // reaches p0's solo terminal run.
        assert!(report.terminals >= 1);
        let full = Explorer::default()
            .with_threads(2)
            .explore_parallel(&two_process_system(), &|_| None)
            .unwrap();
        assert!(
            report.configs_visited < full.configs_visited,
            "degradation must actually shed work: {} vs {}",
            report.configs_visited,
            full.configs_visited
        );
    }

    #[test]
    fn unlimited_explorations_carry_no_truncation_notice() {
        let report = Explorer::default()
            .explore(&two_process_system(), &mut |_| None)
            .unwrap();
        assert!(!report.truncated);
        assert!(report.truncation.is_none());
    }

    #[test]
    fn static_seeding_leaves_reports_identical() {
        // The audit contract: the matrix is a prefilter only, the
        // masks used are always the dynamic oracle's — every verdict
        // and count must match with the seeding on or off, in both
        // explorer modes.
        for sys in
            [two_process_system(), independent_writers(3), blind_writers(3)]
        {
            let on = Explorer::default();
            let off = Explorer::default().with_static(false);
            let rep_on = on.explore(&sys, &mut |_| None).unwrap();
            let rep_off = off.explore(&sys, &mut |_| None).unwrap();
            assert_eq!(rep_on.configs_visited, rep_off.configs_visited);
            assert_eq!(rep_on.terminals, rep_off.terminals);
            assert_eq!(rep_on.pruned, rep_off.pruned);
            assert!(rep_on.static_seed);
            assert!(!rep_off.static_seed);
            assert_eq!(rep_off.static_indep_pairs, 0);
            assert_eq!(rep_off.prefilter_hits, 0);

            let par_on =
                on.with_threads(4).explore_parallel(&sys, &|_| None).unwrap();
            let par_off =
                off.with_threads(4).explore_parallel(&sys, &|_| None).unwrap();
            assert_eq!(par_on.configs_visited, par_off.configs_visited);
            assert_eq!(par_on.terminals, par_off.terminals);
            assert_eq!(par_on.pruned, par_off.pruned);
        }
    }

    #[test]
    fn static_prefilter_fires_on_blind_writers() {
        // Three never-reading writers to disjoint components: all three
        // pairs are statically independent, so the matrix answers (and
        // the audit confirms) at least once per expanded configuration.
        let sys = blind_writers(3);
        let report = Explorer::default().explore(&sys, &mut |_| None).unwrap();
        assert!(report.static_seed);
        assert_eq!(report.static_indep_pairs, 3);
        assert!(report.prefilter_hits > 0, "prefilter never consulted: {report:?}");
        assert!(report.pruned > 0);

        // Scanning protocols are statically dependent on every writer
        // of the object: the matrix is all-dependent and never answers.
        let scanning = Explorer::default()
            .explore(&independent_writers(3), &mut |_| None)
            .unwrap();
        assert!(scanning.static_seed);
        assert_eq!(scanning.static_indep_pairs, 0);
        assert_eq!(scanning.prefilter_hits, 0);
    }

    #[test]
    fn parallel_prefilter_hits_are_thread_count_invariant() {
        let sys = blind_writers(3);
        let base = Explorer::default()
            .with_threads(1)
            .explore_parallel(&sys, &|_| None)
            .unwrap();
        assert!(base.prefilter_hits > 0);
        for threads in [2, 4, 8] {
            let rep = Explorer::default()
                .with_threads(threads)
                .explore_parallel(&sys, &|_| None)
                .unwrap();
            assert_eq!(rep.prefilter_hits, base.prefilter_hits, "t={threads}");
            assert_eq!(rep.static_indep_pairs, base.static_indep_pairs);
        }
    }

    #[test]
    fn static_seeding_is_inert_without_dpor() {
        let report = Explorer::default()
            .with_dpor(false)
            .explore(&blind_writers(3), &mut |_| None)
            .unwrap();
        assert!(!report.static_seed);
        assert_eq!(report.static_indep_pairs, 0);
        assert_eq!(report.prefilter_hits, 0);
    }

    #[test]
    fn unsound_matrix_fails_closed() {
        // Step p0 once so it is poised to update component 0 while p1
        // is poised to scan the same object — a dynamically dependent
        // pair. A matrix claiming the pair independent must be caught
        // by the audit, never silently trusted.
        let mut sys = two_process_system();
        sys.step(ProcessId(0)).unwrap();
        let unsound = InterferenceMatrix::from_relation(2, |_, _| true);
        let mut hits = 0usize;
        let err = match StepMasks::of(&sys, true, Some(&unsound), &mut hits) {
            Ok(_) => panic!("unsound matrix was not caught"),
            Err(err) => err,
        };
        match err {
            ModelError::StaticUnsound { p: 0, q: 1, ref ops } => {
                assert!(ops.contains("vs"), "ops was: {ops}");
            }
            other => panic!("expected StaticUnsound, got {other:?}"),
        }

        // The genuine matrix for the same configuration passes.
        let sound = InterferenceMatrix::build(&sys, 64);
        let mut hits = 0usize;
        StepMasks::of(&sys, true, Some(&sound), &mut hits).unwrap();
    }
}
