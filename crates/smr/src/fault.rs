//! Deterministic, replayable fault injection.
//!
//! The paper's central guarantees are robustness claims: the augmented
//! snapshot of §3 is *non-blocking* (progress despite crash-stopped
//! processes) and the revisionist simulation of §4 tolerates up to
//! `f − 1` simulator crashes. The [`crate::sched::Crash`] adversary
//! exercises those claims with *random* crashes; this module makes
//! fault patterns **precise**: a [`FaultPlan`] places crashes and stall
//! windows at exact points of an execution, composable with every
//! existing scheduler through the [`FaultScheduler`] wrapper, and a
//! plan space can be enumerated exhaustively (every single-crash
//! placement) for certification campaigns.
//!
//! Three kinds of fault are expressible:
//!
//! * [`Fault::CrashAt`] — crash a process permanently once it has taken
//!   an exact number of steps (a *step-indexed* crash: "crash p between
//!   steps 3 and 4 of its operation");
//! * [`Fault::StallWindow`] — suspend a process for a window of the
//!   scheduler's decision clock, then let it resume (a pause/resume
//!   fault — the process is *slow*, not dead);
//! * [`Fault::CrashAfterOp`] — a targeted trigger keyed on trace
//!   events: crash a process immediately after its k-th operation of a
//!   given kind (e.g. "crash p right after its 2nd Update" — the
//!   mid-Block-Update patterns of Kallimanis & Kanellou).
//!
//! Determinism: every trigger is a function of the execution trace and
//! the scheduler's decision clock, never of wall-clock time or thread
//! interleaving. The same `(inner scheduler, seed, plan)` triple always
//! produces the same run, so any failure found under a fault plan
//! replays exactly from its recorded coordinates.

use crate::error::ModelError;
use crate::object::Operation;
use crate::process::ProcessId;
use crate::sched::Scheduler;
use crate::system::System;
use std::fmt;

/// The kind of a base-object operation, for trace-keyed triggers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// A register read.
    Read,
    /// A register write.
    Write,
    /// A snapshot component update.
    Update,
    /// A snapshot scan.
    Scan,
    /// A max-register write.
    WriteMax,
    /// A fetch&increment.
    FetchInc,
    /// A swap.
    Swap,
    /// A compare-and-swap.
    Cas,
}

impl OpKind {
    /// The kind of a concrete operation.
    pub fn of(op: &Operation) -> OpKind {
        match op {
            Operation::Read { .. } => OpKind::Read,
            Operation::Write { .. } => OpKind::Write,
            Operation::Update { .. } => OpKind::Update,
            Operation::Scan { .. } => OpKind::Scan,
            Operation::WriteMax { .. } => OpKind::WriteMax,
            Operation::FetchInc { .. } => OpKind::FetchInc,
            Operation::Swap { .. } => OpKind::Swap,
            Operation::Cas { .. } => OpKind::Cas,
        }
    }

    fn parse(s: &str) -> Option<OpKind> {
        Some(match s {
            "read" => OpKind::Read,
            "write" => OpKind::Write,
            "update" => OpKind::Update,
            "scan" => OpKind::Scan,
            "writemax" => OpKind::WriteMax,
            "fetchinc" => OpKind::FetchInc,
            "swap" => OpKind::Swap,
            "cas" => OpKind::Cas,
            _ => return None,
        })
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Update => "update",
            OpKind::Scan => "scan",
            OpKind::WriteMax => "writemax",
            OpKind::FetchInc => "fetchinc",
            OpKind::Swap => "swap",
            OpKind::Cas => "cas",
        };
        write!(f, "{name}")
    }
}

/// One precisely placed fault.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Fault {
    /// Crash `process` permanently once it has taken `step` steps: it
    /// is never scheduled again after its `step`-th step (so `step: 0`
    /// is an initially dead process).
    CrashAt {
        /// The victim.
        process: ProcessId,
        /// Steps the victim completes before crashing.
        step: usize,
    },
    /// Suspend `process` while the scheduler's decision clock is in
    /// `[from, to)`, then let it resume. The clock ticks once per
    /// scheduling decision, so a stall always expires — a stalled
    /// process is slow, not dead, and the run cannot deadlock on it.
    StallWindow {
        /// The stalled process.
        process: ProcessId,
        /// First decision index of the stall (inclusive).
        from: usize,
        /// First decision index after the stall (exclusive).
        to: usize,
    },
    /// Crash `process` immediately after its `occurrence`-th operation
    /// of kind `kind` (1-based) — a trigger keyed on trace events,
    /// placing the crash *inside* a multi-step operation sequence.
    CrashAfterOp {
        /// The victim.
        process: ProcessId,
        /// The operation kind to count.
        kind: OpKind,
        /// Which occurrence triggers the crash (1-based).
        occurrence: usize,
    },
}

impl Fault {
    /// The process this fault targets.
    pub fn process(&self) -> ProcessId {
        match self {
            Fault::CrashAt { process, .. }
            | Fault::StallWindow { process, .. }
            | Fault::CrashAfterOp { process, .. } => *process,
        }
    }

    /// Is this fault a (permanent) crash?
    pub fn is_crash(&self) -> bool {
        !matches!(self, Fault::StallWindow { .. })
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::CrashAt { process, step } => {
                write!(f, "crash@{}:{}", process.0, step)
            }
            Fault::StallWindow { process, from, to } => {
                write!(f, "stall@{}:{}-{}", process.0, from, to)
            }
            Fault::CrashAfterOp { process, kind, occurrence } => {
                write!(f, "crash-after@{}:{}:{}", process.0, kind, occurrence)
            }
        }
    }
}

/// A deterministic fault plan: a set of precisely placed faults applied
/// on top of any scheduler via [`FaultScheduler`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FaultPlan {
    /// The planned faults.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan (no faults; the wrapper is then transparent).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with a single fault.
    pub fn single(fault: Fault) -> Self {
        FaultPlan { faults: vec![fault] }
    }

    /// Parses a plan from its CLI syntax: `+`-separated faults, each
    ///
    /// * `crash@<pid>:<step>` — [`Fault::CrashAt`];
    /// * `stall@<pid>:<from>-<to>` — [`Fault::StallWindow`];
    /// * `crash-after@<pid>:<op>:<k>` — [`Fault::CrashAfterOp`] with
    ///   `<op>` one of `read`, `write`, `update`, `scan`, `writemax`,
    ///   `fetchinc`, `swap`, `cas`.
    ///
    /// The empty string and `none` parse to the empty plan.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadSpec`] naming the malformed fragment.
    pub fn parse(spec: &str) -> Result<FaultPlan, ModelError> {
        if spec == "none" {
            return Ok(FaultPlan::none());
        }
        let bad = |reason: String| ModelError::BadSpec {
            spec: spec.to_string(),
            reason,
        };
        let mut faults = Vec::new();
        for part in spec.split('+').filter(|p| !p.is_empty()) {
            let (head, rest) = part
                .split_once('@')
                .ok_or_else(|| bad(format!("`{part}` is missing `@<pid>`")))?;
            let fields: Vec<&str> = rest.split(':').collect();
            let pid = |s: &str| -> Result<ProcessId, ModelError> {
                s.parse::<usize>()
                    .map(ProcessId)
                    .map_err(|_| bad(format!("bad process id `{s}` in `{part}`")))
            };
            let num = |s: &str, what: &str| -> Result<usize, ModelError> {
                s.parse::<usize>()
                    .map_err(|_| bad(format!("bad {what} `{s}` in `{part}`")))
            };
            match (head, fields.as_slice()) {
                ("crash", [p, s]) => faults.push(Fault::CrashAt {
                    process: pid(p)?,
                    step: num(s, "step")?,
                }),
                ("stall", [p, window]) => {
                    let (from, to) = window.split_once('-').ok_or_else(|| {
                        bad(format!("`{part}` needs `<from>-<to>`"))
                    })?;
                    let (from, to) = (num(from, "from")?, num(to, "to")?);
                    if from >= to {
                        return Err(bad(format!(
                            "empty stall window {from}-{to} in `{part}`"
                        )));
                    }
                    faults.push(Fault::StallWindow { process: pid(p)?, from, to });
                }
                ("crash-after", [p, op, k]) => {
                    let kind = OpKind::parse(op).ok_or_else(|| {
                        bad(format!("unknown operation kind `{op}` in `{part}`"))
                    })?;
                    let occurrence = num(k, "occurrence")?;
                    if occurrence == 0 {
                        return Err(bad(format!(
                            "occurrence is 1-based in `{part}`"
                        )));
                    }
                    faults.push(Fault::CrashAfterOp {
                        process: pid(p)?,
                        kind,
                        occurrence,
                    });
                }
                _ => {
                    return Err(bad(format!(
                        "`{part}` is not crash@p:s, stall@p:a-b, or \
                         crash-after@p:op:k"
                    )))
                }
            }
        }
        Ok(FaultPlan { faults })
    }

    /// Is the plan empty?
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Processes this plan will crash (deduplicated, ascending).
    pub fn crash_victims(&self) -> Vec<ProcessId> {
        let mut victims: Vec<ProcessId> = self
            .faults
            .iter()
            .filter(|f| f.is_crash())
            .map(Fault::process)
            .collect();
        victims.sort_by_key(|p| p.0);
        victims.dedup();
        victims
    }

    /// Enumerates every single-crash plan over `processes` processes
    /// with crash points `0..=max_step` — the exhaustive plan space a
    /// certification campaign fans over. Plans are ordered process-
    /// major, then by step (deterministic).
    pub fn single_crash_plans(processes: usize, max_step: usize) -> Vec<FaultPlan> {
        let mut plans = Vec::with_capacity(processes * (max_step + 1));
        for p in 0..processes {
            for step in 0..=max_step {
                plans.push(FaultPlan::single(Fault::CrashAt {
                    process: ProcessId(p),
                    step,
                }));
            }
        }
        plans
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.faults.is_empty() {
            return write!(f, "none");
        }
        let parts: Vec<String> =
            self.faults.iter().map(|fault| fault.to_string()).collect();
        write!(f, "{}", parts.join("+"))
    }
}

/// A fault that fired during a run, with the coordinates at which it
/// did — the replayable witness recorded alongside the trace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AppliedFault {
    /// The fault that fired.
    pub fault: Fault,
    /// Decision-clock index at which it took effect.
    pub decision: usize,
    /// Global step count (trace length) at which it took effect.
    pub step: usize,
}

impl fmt::Display for AppliedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fired at decision {} (global step {})",
            self.fault, self.decision, self.step
        )
    }
}

/// Wraps any scheduler and applies a [`FaultPlan`] on top of it:
/// crashed processes are never scheduled again, stalled processes are
/// skipped for the duration of their window.
///
/// The wrapper re-asks the inner scheduler (a bounded number of times)
/// when it picks a faulted process, then falls back to the lowest-id
/// live unfaulted process, so a fault plan restricts the schedule
/// without deadlocking it. If every live process is crashed, the run
/// ends (`None`) — exactly the paper's crash model, where a
/// non-blocking object must still make progress for the survivors.
pub struct FaultScheduler {
    inner: Box<dyn Scheduler>,
    plan: FaultPlan,
    /// Which plan entries already fired (parallel to `plan.faults`).
    fired: Vec<bool>,
    crashed: Vec<ProcessId>,
    applied: Vec<AppliedFault>,
    /// Scheduling decisions made so far (the stall clock).
    decisions: usize,
    /// How much of the trace has been consumed for op-kind triggers.
    trace_cursor: usize,
    /// Per-(fault-index) op occurrence counts for `CrashAfterOp`.
    op_counts: Vec<usize>,
}

impl FaultScheduler {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: Box<dyn Scheduler>, plan: FaultPlan) -> Self {
        let n = plan.faults.len();
        FaultScheduler {
            inner,
            plan,
            fired: vec![false; n],
            crashed: Vec::new(),
            applied: Vec::new(),
            decisions: 0,
            trace_cursor: 0,
            op_counts: vec![0; n],
        }
    }

    /// The plan being applied.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Processes crashed so far, in crash order.
    pub fn crashed(&self) -> &[ProcessId] {
        &self.crashed
    }

    /// Has `pid` crashed?
    pub fn is_crashed(&self, pid: ProcessId) -> bool {
        self.crashed.contains(&pid)
    }

    /// Every fault that has fired, with its firing coordinates.
    pub fn applied(&self) -> &[AppliedFault] {
        &self.applied
    }

    /// Processes that survived the plan so far (not crashed), in id
    /// order.
    pub fn survivors(&self, system: &System) -> Vec<ProcessId> {
        (0..system.process_count())
            .map(ProcessId)
            .filter(|p| !self.is_crashed(*p))
            .collect()
    }

    fn crash(&mut self, index: usize, system: &System) {
        let fault = self.plan.faults[index].clone();
        let victim = fault.process();
        self.fired[index] = true;
        if !self.crashed.contains(&victim) {
            self.crashed.push(victim);
        }
        self.applied.push(AppliedFault {
            fault,
            decision: self.decisions,
            step: system.trace().len(),
        });
    }

    /// Evaluates crash triggers against the system state and the trace
    /// suffix not yet consumed.
    fn apply_triggers(&mut self, system: &System) {
        // Trace-keyed triggers: consume new events exactly once. The
        // copy-on-write trace skips already-consumed segments without
        // walking them.
        let trace = system.trace();
        for event in trace.events_from(self.trace_cursor.min(trace.len())) {
            for i in 0..self.plan.faults.len() {
                if self.fired[i] {
                    continue;
                }
                if let Fault::CrashAfterOp { process, kind, occurrence } =
                    &self.plan.faults[i]
                {
                    if event.pid == *process && OpKind::of(&event.op) == *kind {
                        self.op_counts[i] += 1;
                        if self.op_counts[i] >= *occurrence {
                            self.crash(i, system);
                        }
                    }
                }
            }
        }
        self.trace_cursor = trace.len();
        // Step-indexed crashes.
        for i in 0..self.plan.faults.len() {
            if self.fired[i] {
                continue;
            }
            if let Fault::CrashAt { process, step } = self.plan.faults[i] {
                if system.steps_of(process) >= step {
                    self.crash(i, system);
                }
            }
        }
    }

    /// Is `pid` stalled at the current decision clock?
    fn is_stalled(&self, pid: ProcessId) -> bool {
        self.plan.faults.iter().any(|f| {
            matches!(f, Fault::StallWindow { process, from, to }
                if *process == pid && *from <= self.decisions && self.decisions < *to)
        })
    }

    fn is_blocked(&self, pid: ProcessId) -> bool {
        self.is_crashed(pid) || self.is_stalled(pid)
    }

    /// One scheduling decision at the current (un-ticked) clock; the
    /// clock advances in [`Scheduler::next`] after this returns so every
    /// check within a decision sees the same clock value.
    fn pick(&mut self, system: &System) -> Option<ProcessId> {
        self.apply_triggers(system);
        // Record stall activations the first time their window covers
        // the clock (replay diagnostics; stalls are not permanent, so
        // they do not enter `crashed`).
        for i in 0..self.plan.faults.len() {
            if self.fired[i] {
                continue;
            }
            if let Fault::StallWindow { from, to, .. } = self.plan.faults[i] {
                if from <= self.decisions && self.decisions < to {
                    let fault = self.plan.faults[i].clone();
                    self.fired[i] = true;
                    self.applied.push(AppliedFault {
                        fault,
                        decision: self.decisions,
                        step: system.trace().len(),
                    });
                }
            }
        }
        let n = system.process_count();
        // Give the inner scheduler a bounded number of chances to pick
        // an unfaulted process; its choices stay deterministic because
        // they only consume its own (seeded) state.
        for _ in 0..2 * n + 2 {
            match self.inner.next(system) {
                Some(pid) if !self.is_blocked(pid) => return Some(pid),
                Some(_) => continue,
                None => return None,
            }
        }
        // Deterministic fallback: the lowest-id live unfaulted process.
        (0..n)
            .map(ProcessId)
            .find(|&p| !system.is_terminated(p) && !self.is_blocked(p))
    }
}

impl Scheduler for FaultScheduler {
    fn next(&mut self, system: &System) -> Option<ProcessId> {
        let choice = self.pick(system);
        self.decisions += 1;
        choice
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Object, ObjectId};
    use crate::process::{Process, ProtocolStep, SnapshotProcess, SnapshotProtocol};
    use crate::sched::{Random, RoundRobin};
    use crate::value::Value;

    /// Terminates after `n` updates.
    #[derive(Clone, Debug)]
    struct Stepper {
        n: usize,
    }

    impl SnapshotProtocol for Stepper {
        fn on_scan(&mut self, _view: &[Value]) -> ProtocolStep {
            if self.n == 0 {
                ProtocolStep::Output(Value::Int(0))
            } else {
                self.n -= 1;
                ProtocolStep::Update(0, Value::Int(self.n as i64))
            }
        }
        fn components(&self) -> usize {
            1
        }
    }

    fn system(n_procs: usize, steps: usize) -> System {
        let procs = (0..n_procs)
            .map(|_| {
                Box::new(SnapshotProcess::new(Stepper { n: steps }, ObjectId(0)))
                    as Box<dyn Process>
            })
            .collect();
        System::new(vec![Object::snapshot(1)], procs)
    }

    #[test]
    fn plan_syntax_round_trips() {
        for spec in [
            "crash@0:3",
            "stall@1:4-9",
            "crash-after@2:update:2",
            "crash@0:0+stall@1:0-5+crash-after@2:scan:1",
        ] {
            let plan = FaultPlan::parse(spec).unwrap();
            assert_eq!(plan.to_string(), spec, "round trip of `{spec}`");
        }
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert_eq!(FaultPlan::none().to_string(), "none");
    }

    #[test]
    fn malformed_plans_are_rejected_with_reasons() {
        for bad in [
            "crash@x:1",
            "crash@0",
            "stall@0:9-4",
            "stall@0:5",
            "crash-after@0:frob:1",
            "crash-after@0:scan:0",
            "explode@0:1",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            match err {
                ModelError::BadSpec { spec, reason } => {
                    assert_eq!(spec, bad);
                    assert!(!reason.is_empty());
                }
                other => panic!("expected BadSpec, got {other:?}"),
            }
        }
    }

    #[test]
    fn crash_at_stops_the_victim_exactly_on_time() {
        let mut sys = system(3, 10);
        let plan = FaultPlan::parse("crash@1:4").unwrap();
        let mut sched = FaultScheduler::new(Box::new(RoundRobin::new()), plan);
        sys.run(&mut sched, 100_000).unwrap();
        // The victim took exactly 4 steps and no more.
        assert_eq!(sys.steps_of(ProcessId(1)), 4);
        assert!(sched.is_crashed(ProcessId(1)));
        // Survivors still finished: non-blocking progress.
        assert!(sys.is_terminated(ProcessId(0)));
        assert!(sys.is_terminated(ProcessId(2)));
        assert!(!sys.is_terminated(ProcessId(1)));
        assert_eq!(sched.survivors(&sys), vec![ProcessId(0), ProcessId(2)]);
        assert_eq!(sched.applied().len(), 1);
    }

    #[test]
    fn crash_at_zero_is_an_initially_dead_process() {
        let mut sys = system(2, 5);
        let plan = FaultPlan::single(Fault::CrashAt { process: ProcessId(0), step: 0 });
        let mut sched = FaultScheduler::new(Box::new(RoundRobin::new()), plan);
        sys.run(&mut sched, 10_000).unwrap();
        assert_eq!(sys.steps_of(ProcessId(0)), 0);
        assert!(sys.is_terminated(ProcessId(1)));
    }

    #[test]
    fn stall_window_pauses_then_resumes() {
        let mut sys = system(2, 5);
        let plan = FaultPlan::parse("stall@0:0-8").unwrap();
        let mut sched = FaultScheduler::new(Box::new(RoundRobin::new()), plan);
        sys.run(&mut sched, 10_000).unwrap();
        // The stalled process eventually resumed and finished.
        assert!(sys.all_terminated());
        // During decisions [0, 8) only p1 stepped: the first 8 trace
        // events belong to p1 (p1 needs 11 steps total, > 8).
        for event in sys.trace().iter().take(8) {
            assert_eq!(event.pid, ProcessId(1), "stalled process stepped early");
        }
        assert_eq!(sched.applied().len(), 1);
    }

    #[test]
    fn crash_after_op_fires_mid_sequence() {
        let mut sys = system(3, 10);
        // Crash p0 immediately after its 2nd Update — between "steps"
        // of its protocol sequence, the Kallimanis–Kanellou pattern.
        let plan = FaultPlan::parse("crash-after@0:update:2").unwrap();
        let mut sched = FaultScheduler::new(Box::new(RoundRobin::new()), plan);
        sys.run(&mut sched, 100_000).unwrap();
        let updates = sys
            .trace()
            .iter()
            .filter(|e| e.pid == ProcessId(0) && OpKind::of(&e.op) == OpKind::Update)
            .count();
        assert_eq!(updates, 2, "p0 crashed right after its second update");
        assert!(sys.is_terminated(ProcessId(1)));
        assert!(sys.is_terminated(ProcessId(2)));
    }

    #[test]
    fn fault_runs_are_deterministic_per_seed_and_plan() {
        let run = || {
            let mut sys = system(3, 6);
            let plan = FaultPlan::parse("crash@2:3+stall@0:2-6").unwrap();
            let mut sched =
                FaultScheduler::new(Box::new(Random::seeded(42)), plan);
            sys.run(&mut sched, 100_000).unwrap();
            (sys.trace().to_vec(), sched.applied().to_vec())
        };
        let (trace_a, applied_a) = run();
        let (trace_b, applied_b) = run();
        assert_eq!(trace_a, trace_b);
        assert_eq!(applied_a, applied_b);
        assert!(!applied_a.is_empty());
    }

    #[test]
    fn all_processes_crashed_ends_the_run() {
        let mut sys = system(2, 5);
        let plan = FaultPlan::parse("crash@0:1+crash@1:1").unwrap();
        let mut sched = FaultScheduler::new(Box::new(RoundRobin::new()), plan);
        let steps = sys.run(&mut sched, 10_000).unwrap();
        assert_eq!(steps, 2);
        assert!(!sys.all_terminated());
        assert!(sched.survivors(&sys).is_empty());
    }

    #[test]
    fn empty_plan_is_transparent() {
        let mut faulted = system(3, 4);
        let mut plain = system(3, 4);
        let mut sched =
            FaultScheduler::new(Box::new(Random::seeded(7)), FaultPlan::none());
        faulted.run(&mut sched, 10_000).unwrap();
        plain.run(&mut Random::seeded(7), 10_000).unwrap();
        assert_eq!(faulted.trace(), plain.trace());
        assert!(sched.applied().is_empty());
    }

    #[test]
    fn single_crash_plan_space_is_exhaustive_and_ordered() {
        let plans = FaultPlan::single_crash_plans(3, 5);
        assert_eq!(plans.len(), 3 * 6);
        assert_eq!(plans[0].to_string(), "crash@0:0");
        assert_eq!(plans[5].to_string(), "crash@0:5");
        assert_eq!(plans[6].to_string(), "crash@1:0");
        assert_eq!(plans[17].to_string(), "crash@2:5");
        // All distinct.
        let mut seen: Vec<String> = plans.iter().map(|p| p.to_string()).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), plans.len());
    }

    #[test]
    fn applied_fault_display_names_coordinates() {
        let applied = AppliedFault {
            fault: Fault::CrashAt { process: ProcessId(1), step: 4 },
            decision: 9,
            step: 8,
        };
        let text = applied.to_string();
        assert!(text.contains("crash@1:4"));
        assert!(text.contains("decision 9"));
        assert!(text.contains("step 8"));
    }
}
