//! A Wing–Gong linearizability checker.
//!
//! Given a [`History`] of high-level operations on one object and the
//! object's sequential specification (an [`Object`] value), the checker
//! searches for a linearization: a total order of the operations,
//! consistent with the real-time partial order, whose sequential
//! execution reproduces every recorded response. Pending operations may
//! be linearized (with any response) or dropped.
//!
//! The search is exponential in the worst case but memoized on
//! (linearized-set, object state); histories from the test harnesses are
//! small enough for this to be fast.

use crate::history::{History, OpRecord};
use crate::object::Object;
use std::collections::HashSet;

/// Outcome of a linearizability check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LinCheck {
    /// A witness linearization was found (operation ids in order).
    Linearizable(Vec<usize>),
    /// No linearization exists.
    NotLinearizable,
}

impl LinCheck {
    /// Is the history linearizable?
    pub fn is_ok(&self) -> bool {
        matches!(self, LinCheck::Linearizable(_))
    }
}

/// Checks whether `history` is linearizable with respect to the
/// sequential object `initial`.
///
/// # Panics
///
/// Panics if the history contains more than 127 operations (the memo
/// key uses a 128-bit mask); harness histories are far smaller.
///
/// # Examples
///
/// ```
/// use rsim_smr::history::History;
/// use rsim_smr::linearizability::check;
/// use rsim_smr::object::{Object, ObjectId, Operation, Response};
/// use rsim_smr::value::Value;
///
/// let mut h = History::new();
/// let w = h.invoke(0, Operation::Write { obj: ObjectId(0), value: Value::Int(1) });
/// h.respond(w, Response::Ack);
/// let r = h.invoke(1, Operation::Read { obj: ObjectId(0) });
/// h.respond(r, Response::Value(Value::Int(1)));
/// assert!(check(&h, Object::register()).is_ok());
/// ```
pub fn check(history: &History, initial: Object) -> LinCheck {
    let records = history.records();
    assert!(records.len() < 128, "history too large for the checker");
    let mut memo: HashSet<(u128, Object)> = HashSet::new();
    let mut order: Vec<usize> = Vec::new();
    if search(records, initial, 0, &mut memo, &mut order) {
        LinCheck::Linearizable(order)
    } else {
        LinCheck::NotLinearizable
    }
}

/// Can `rec` be linearized next, given the set `done` already linearized?
/// It can unless some *other* unlinearized operation responded before
/// `rec` was invoked (real-time order would be violated).
fn eligible(records: &[OpRecord], done: u128, rec: &OpRecord) -> bool {
    for other in records {
        if other.id == rec.id || done & (1u128 << other.id.0) != 0 {
            continue;
        }
        if other.precedes(rec) {
            return false;
        }
    }
    true
}

fn search(
    records: &[OpRecord],
    state: Object,
    done: u128,
    memo: &mut HashSet<(u128, Object)>,
    order: &mut Vec<usize>,
) -> bool {
    // Success when every *completed* operation is linearized; pending
    // operations may be dropped.
    if records
        .iter()
        .all(|r| r.resp.is_none() || done & (1u128 << r.id.0) != 0)
    {
        return true;
    }
    // The memo key is the exact object state — structurally hashed and
    // compared, no `Debug` string per search node.
    if !memo.insert((done, state.clone())) {
        return false;
    }
    for rec in records {
        let bit = 1u128 << rec.id.0;
        if done & bit != 0 || !eligible(records, done, rec) {
            continue;
        }
        let mut next_state = state.clone();
        let Ok(resp) = next_state.apply(&rec.op) else {
            continue;
        };
        // A completed operation must have received exactly the
        // sequential response; a pending one may take any response.
        if let Some(recorded) = &rec.resp {
            if *recorded != resp {
                continue;
            }
        }
        order.push(rec.id.0);
        if search(records, next_state, done | bit, memo, order) {
            return true;
        }
        order.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{ObjectId, Operation, Response};
    use crate::value::Value;

    fn write(v: i64) -> Operation {
        Operation::Write { obj: ObjectId(0), value: Value::Int(v) }
    }

    fn read() -> Operation {
        Operation::Read { obj: ObjectId(0) }
    }

    fn rval(v: i64) -> Response {
        Response::Value(Value::Int(v))
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let mut h = History::new();
        let w = h.invoke(0, write(1));
        h.respond(w, Response::Ack);
        let r = h.invoke(1, read());
        h.respond(r, rval(1));
        assert!(check(&h, Object::register()).is_ok());
    }

    #[test]
    fn stale_read_after_write_is_not_linearizable() {
        let mut h = History::new();
        let w = h.invoke(0, write(1));
        h.respond(w, Response::Ack);
        // Read strictly after the write must see 1, not ⊥.
        let r = h.invoke(1, read());
        h.respond(r, Response::Value(Value::Nil));
        assert!(!check(&h, Object::register()).is_ok());
    }

    #[test]
    fn concurrent_read_may_see_either() {
        for seen in [Value::Nil, Value::Int(1)] {
            let mut h = History::new();
            let w = h.invoke(0, write(1));
            let r = h.invoke(1, read());
            h.respond(w, Response::Ack);
            h.respond(r, Response::Value(seen));
            assert!(check(&h, Object::register()).is_ok());
        }
    }

    #[test]
    fn pending_write_may_take_effect() {
        let mut h = History::new();
        let _w = h.invoke(0, write(1)); // never responds (crash)
        let r = h.invoke(1, read());
        h.respond(r, rval(1));
        assert!(check(&h, Object::register()).is_ok());
    }

    #[test]
    fn pending_write_may_be_dropped() {
        let mut h = History::new();
        let _w = h.invoke(0, write(1));
        let r = h.invoke(1, read());
        h.respond(r, Response::Value(Value::Nil));
        assert!(check(&h, Object::register()).is_ok());
    }

    #[test]
    fn new_old_inversion_is_caught() {
        // w(1) completes; then r1 sees ⊥ after r2 saw 1 — with both reads
        // after the write, sequentially impossible.
        let mut h = History::new();
        let w = h.invoke(0, write(1));
        h.respond(w, Response::Ack);
        let r2 = h.invoke(2, read());
        h.respond(r2, rval(1));
        let r1 = h.invoke(1, read());
        h.respond(r1, Response::Value(Value::Nil));
        assert!(!check(&h, Object::register()).is_ok());
    }

    #[test]
    fn snapshot_histories_check() {
        let mut h = History::new();
        let u = h.invoke(0, Operation::Update {
            obj: ObjectId(0),
            component: 1,
            value: Value::Int(9),
        });
        h.respond(u, Response::Ack);
        let s = h.invoke(1, Operation::Scan { obj: ObjectId(0) });
        h.respond(s, Response::View(vec![Value::Nil, Value::Int(9)]));
        assert!(check(&h, Object::snapshot(2)).is_ok());

        let mut bad = History::new();
        let u = bad.invoke(0, Operation::Update {
            obj: ObjectId(0),
            component: 0,
            value: Value::Int(9),
        });
        bad.respond(u, Response::Ack);
        let s = bad.invoke(1, Operation::Scan { obj: ObjectId(0) });
        bad.respond(s, Response::View(vec![Value::Nil, Value::Nil]));
        assert!(!check(&bad, Object::snapshot(2)).is_ok());
    }

    #[test]
    fn witness_order_respects_real_time() {
        let mut h = History::new();
        let a = h.invoke(0, write(1));
        h.respond(a, Response::Ack);
        let b = h.invoke(1, write(2));
        h.respond(b, Response::Ack);
        let r = h.invoke(0, read());
        h.respond(r, rval(2));
        match check(&h, Object::register()) {
            LinCheck::Linearizable(order) => {
                let pos_a = order.iter().position(|&x| x == 0).unwrap();
                let pos_b = order.iter().position(|&x| x == 1).unwrap();
                assert!(pos_a < pos_b);
            }
            LinCheck::NotLinearizable => panic!("should linearize"),
        }
    }
}
