//! The static-interference soundness gate.
//!
//! The static independence matrix may only ever *agree with or
//! over-approximate* the dynamic happens-before oracle: a pair the
//! matrix calls independent must be dynamically independent on every
//! reachable co-enabled operation pair. The explorer enforces this
//! fail-closed (`ModelError::StaticUnsound`), so the strongest gate is
//! simply running the seeded explorer over a large generated corpus —
//! any unsound matrix entry aborts the exploration. On top of that,
//! static seeding must be invisible in the report: byte-identical
//! observables with seeding on or off, at 1 and 4 threads.

use rsim_smr::analyze::{InterferenceMatrix, DEFAULT_BUDGET};
use rsim_smr::explore::{Explorer, ExploreReport, Limits};
use rsim_smr::gen::{fuzz::consensus_check, GenSpec};
use rsim_smr::hb::DependentPairs;
use rsim_smr::object::{Object, ObjectId, Operation, Response};
use rsim_smr::process::{Poised, Process, ProcessId};
use rsim_smr::system::System;
use rsim_smr::value::Value;

/// Depth-bounded, effectively config-unbounded: the sound regime for
/// on/off report comparison (see `tests/dpor.rs` for the argument).
/// Pre-flight is off: the corpus deliberately includes mutants that
/// violate the lint discipline — the subject here is matrix soundness,
/// which must hold on ill-formed systems too.
const LIMITS: Limits = Limits { max_depth: 9, max_configs: 5_000_000 };

fn explore(sys: &System, statics: bool, threads: usize, check: &(dyn Fn(&System) -> Option<String> + Sync)) -> ExploreReport {
    Explorer::new(LIMITS)
        .with_threads(threads)
        .with_static(statics)
        .with_preflight(false)
        .explore_parallel(sys, check)
        .unwrap_or_else(|e| panic!("static seeding must be sound: {e}"))
}

/// Writes its own snapshot slot once — never reads — then outputs.
/// Pairs of these are statically independent (disjoint write slots,
/// empty read sets), so the matrix actually answers pair queries.
#[derive(Clone, Debug)]
struct Blind {
    slot: usize,
    wrote: bool,
}

impl Process for Blind {
    fn poised(&self) -> Poised {
        if self.wrote {
            Poised::Output(Value::Int(self.slot as i64))
        } else {
            Poised::Step(Operation::Update {
                obj: ObjectId(0),
                component: self.slot,
                value: Value::Int(1),
            })
        }
    }
    fn receive(&mut self, _resp: Response) {
        self.wrote = true;
    }
    fn boxed_clone(&self) -> Box<dyn Process> {
        Box::new(self.clone())
    }
}

/// Scans the shared snapshot `remaining` times, then outputs — a
/// reader the matrix must keep dependent on every same-object writer.
#[derive(Clone, Debug)]
struct Scanner {
    remaining: usize,
}

impl Process for Scanner {
    fn poised(&self) -> Poised {
        if self.remaining == 0 {
            Poised::Output(Value::Int(-1))
        } else {
            Poised::Step(Operation::Scan { obj: ObjectId(0) })
        }
    }
    fn receive(&mut self, _resp: Response) {
        self.remaining -= 1;
    }
    fn boxed_clone(&self) -> Box<dyn Process> {
        Box::new(self.clone())
    }
}

/// `writers` blind writers plus `scanners` scanning readers over one
/// shared snapshot: writer-writer pairs are statically independent,
/// every writer-scanner pair is dependent — both matrix answers and
/// the explorer's per-pair audit get exercised in one system.
fn mixed_system(writers: usize, scanners: usize) -> System {
    let mut processes: Vec<Box<dyn Process>> = (0..writers)
        .map(|slot| Box::new(Blind { slot, wrote: false }) as Box<dyn Process>)
        .collect();
    processes.extend(
        (0..scanners).map(|_| Box::new(Scanner { remaining: 2 }) as Box<dyn Process>),
    );
    System::new(vec![Object::snapshot(writers.max(1))], processes)
}

fn assert_equivalent(on: &ExploreReport, off: &ExploreReport, label: &str) {
    assert!(on.static_seed, "{label}: seeding not active");
    assert!(!off.static_seed, "{label}: escape hatch not recorded");
    assert_eq!(off.prefilter_hits, 0, "{label}: unseeded run counted hits");
    assert_eq!(off.static_indep_pairs, 0, "{label}: unseeded run built a matrix");
    assert_eq!(on.configs_visited, off.configs_visited, "{label}: configs_visited");
    assert_eq!(on.terminals, off.terminals, "{label}: terminals");
    assert_eq!(on.pruned, off.pruned, "{label}: pruned");
    assert_eq!(on.truncated, off.truncated, "{label}: truncated");
    assert_eq!(on.violation, off.violation, "{label}: violation");
}

/// The headline soundness gate: 256 generated protocols explored with
/// the static matrix armed. Every matrix-independent claim is audited
/// against the dynamic oracle on every co-enabled pair — an unsound
/// entry fails the exploration (and this test). Reports must be
/// byte-identical to unseeded runs at 1 and 4 threads.
#[test]
fn soundness_gate_over_generated_protocols() {
    for seed in 0..256u64 {
        let spec = GenSpec::from_seed(seed);
        let sys = spec.build_system();
        let check = consensus_check(spec.inputs());
        let matrix = InterferenceMatrix::build(&sys, DEFAULT_BUDGET);
        let baseline = explore(&sys, true, 1, &check);
        assert_eq!(
            baseline.static_indep_pairs,
            matrix.indep_pairs(),
            "gen:{seed}: report disagrees with the matrix it was seeded from"
        );
        for threads in [1usize, 4] {
            let on = explore(&sys, true, threads, &check);
            let off = explore(&sys, false, threads, &check);
            assert_equivalent(&on, &off, &format!("gen:{seed} threads={threads}"));
            // Seeded reports are additionally bit-identical across
            // thread counts, prefilter tally included.
            assert_eq!(on.configs_visited, baseline.configs_visited, "gen:{seed}");
            assert_eq!(on.prefilter_hits, baseline.prefilter_hits, "gen:{seed} threads={threads}");
            assert_eq!(on.violation, baseline.violation, "gen:{seed}");
        }
    }
}

/// The generated corpus is all-scanning (object-granularity reads make
/// every pair dependent), so the prefilter is vacuous there. Mixed
/// blind-writer/scanner fixtures exercise the other half: matrices
/// with real independent pairs, audited against the dynamic oracle on
/// every co-enabled pair, at 1 and 4 threads, with hits observed.
#[test]
fn soundness_gate_over_mixed_fixture_families() {
    let mut total_hits = 0usize;
    for (writers, scanners) in
        [(2usize, 1usize), (2, 2), (3, 1), (3, 2), (4, 1), (4, 2)]
    {
        let sys = mixed_system(writers, scanners);
        let label = format!("mixed {writers}w+{scanners}s");
        let matrix = InterferenceMatrix::build(&sys, DEFAULT_BUDGET);
        assert_eq!(
            matrix.indep_pairs(),
            writers * (writers - 1) / 2 + scanners * (scanners - 1) / 2,
            "{label}: writer-writer and scanner-scanner pairs are the \
             independent ones"
        );
        let baseline = explore(&sys, true, 1, &|_| None);
        assert!(baseline.prefilter_hits > 0, "{label}: prefilter never fired");
        for threads in [1usize, 4] {
            let on = explore(&sys, true, threads, &|_| None);
            let off = explore(&sys, false, threads, &|_| None);
            assert_equivalent(&on, &off, &format!("{label} threads={threads}"));
            assert_eq!(on.prefilter_hits, baseline.prefilter_hits, "{label} t={threads}");
        }
        total_hits += baseline.prefilter_hits;
    }
    assert!(total_hits > 0);
}

/// The direct differential check, without the explorer in the loop:
/// dynamic dependences observed on driven round-robin runs must be a
/// subset of the matrix's dependent pairs — equivalently, no pair the
/// matrix calls independent ever shows up dynamically dependent.
#[test]
fn dynamic_dependences_are_a_subset_of_static_dependences() {
    let mut observed_pairs = 0usize;
    for seed in 0..256u64 {
        let spec = GenSpec::from_seed(seed);
        let initial = spec.build_system();
        let n = initial.process_count();
        let matrix = InterferenceMatrix::build(&initial, DEFAULT_BUDGET);

        let mut sys = initial.clone();
        for slot in 0..2_000usize {
            let pid = ProcessId(slot % n);
            if sys.is_terminated(pid) {
                if (0..n).all(|i| sys.is_terminated(ProcessId(i))) {
                    break;
                }
                continue;
            }
            if sys.step(pid).is_err() {
                break;
            }
        }
        let mut dynamic = DependentPairs::new();
        dynamic.observe_trace(sys.trace().to_vec().iter());
        for (p, q) in dynamic.iter() {
            assert!(
                !matrix.independent(p, q),
                "gen:{seed}: matrix calls (p{p}, p{q}) independent but the \
                 round-robin trace witnessed a dependence"
            );
        }
        observed_pairs += dynamic.len();
    }
    assert!(observed_pairs > 0, "no dynamic dependences observed at all");
}

/// Mutated generated protocols go through the same gate: mutations
/// change process *behaviour*, and the matrix is rebuilt from the
/// mutated system, so soundness must survive every mutation kind.
/// Some mutants violate the runtime's ownership discipline and error
/// out mid-exploration — then seeding on and off must fail with the
/// *same* error, and never with a static-soundness one.
#[test]
fn soundness_gate_survives_mutations() {
    for seed in [0u64, 7, 33, 90, 151, 200] {
        for mutation in rsim_smr::gen::mutate::ALL_MUTATIONS {
            let spec = mutation.apply(&GenSpec::from_seed(seed));
            let sys = spec.build_system();
            let check = consensus_check(spec.inputs());
            let label = format!("gen:{seed}:{mutation:?}");
            let run = |statics: bool| {
                Explorer::new(LIMITS)
                    .with_static(statics)
                    .with_preflight(false)
                    .explore_parallel(&sys, &check)
            };
            match (run(true), run(false)) {
                (Ok(on), Ok(off)) => assert_equivalent(&on, &off, &label),
                (Err(on), Err(off)) => {
                    assert_eq!(on.to_string(), off.to_string(), "{label}");
                    assert!(
                        !on.to_string().contains("static interference matrix unsound"),
                        "{label}: the matrix itself was unsound: {on}"
                    );
                }
                (Ok(_), Err(e)) => panic!("{label}: only the unseeded run failed: {e}"),
                (Err(e), Ok(_)) => panic!("{label}: only the seeded run failed: {e}"),
            }
        }
    }
}
