//! Property-based tests for the sharded fingerprint cache: under
//! arbitrary interleavings of insert/contains across shards and
//! threads, the cache must agree exactly with a reference `HashSet` —
//! no configuration lost, none double-counted.

use proptest::prelude::*;
use rsim_smr::fingerprint::{fingerprint, FingerprintCache};
use std::collections::HashSet;

proptest! {
    #[test]
    fn sequential_ops_match_reference_hashset(
        keys in proptest::collection::vec(0u64..512, 1..200),
        shards in 1usize..32,
    ) {
        let cache = FingerprintCache::new(shards);
        let mut reference: HashSet<u64> = HashSet::new();
        for key in &keys {
            let rendered = format!("cfg-{key}");
            // contains before insert must agree with the reference...
            prop_assert_eq!(
                cache.contains(&rendered),
                reference.contains(&fingerprint(&rendered))
            );
            // ...and insert must report new/duplicate exactly as the
            // reference does.
            prop_assert_eq!(
                cache.insert(&rendered),
                reference.insert(fingerprint(&rendered))
            );
        }
        prop_assert_eq!(cache.len(), reference.len());
        for key in &keys {
            prop_assert!(cache.contains(&format!("cfg-{key}")));
        }
        prop_assert!(!cache.contains("never-inserted"));
    }

    #[test]
    fn concurrent_inserts_match_reference_hashset(
        keys in proptest::collection::vec(0u64..256, 1..300),
        shards in 1usize..16,
        threads in 2usize..6,
    ) {
        let cache = FingerprintCache::new(shards);
        // Every thread races to insert every key: maximal contention on
        // duplicates. The set must still match the reference exactly,
        // and each distinct key must be counted exactly once.
        let new_inserts = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = &cache;
                let keys = &keys;
                let new_inserts = &new_inserts;
                scope.spawn(move || {
                    // Each thread walks the keys from a different
                    // offset so shard lock acquisition interleaves.
                    for i in 0..keys.len() {
                        let key = keys[(i + t * 7) % keys.len()];
                        if cache.insert(&format!("cfg-{key}")) {
                            new_inserts.fetch_add(
                                1,
                                std::sync::atomic::Ordering::Relaxed,
                            );
                        }
                    }
                });
            }
        });
        let reference: HashSet<u64> = keys
            .iter()
            .map(|key| fingerprint(&format!("cfg-{key}")))
            .collect();
        prop_assert_eq!(cache.len(), reference.len());
        // Exactly one of the racing inserts per distinct key won.
        prop_assert_eq!(new_inserts.into_inner(), reference.len());
        for key in &keys {
            prop_assert!(cache.contains(&format!("cfg-{key}")));
        }
    }

    #[test]
    fn shard_choice_is_invisible_to_membership(
        keys in proptest::collection::btree_set(0u64..10_000, 1..64),
    ) {
        // The same key set inserted into caches with different shard
        // counts yields identical membership and size.
        let one = FingerprintCache::new(1);
        let many = FingerprintCache::new(16);
        for key in &keys {
            one.insert(&format!("k{key}"));
            many.insert(&format!("k{key}"));
        }
        prop_assert_eq!(one.len(), many.len());
        prop_assert_eq!(one.len(), keys.len());
        for key in &keys {
            prop_assert_eq!(
                one.contains(&format!("k{key}")),
                many.contains(&format!("k{key}"))
            );
        }
    }
}
