//! The DPOR differential gate.
//!
//! Partial-order reduction must never change what an exploration
//! *finds* — only how many redundant forks it pays for. These tests
//! run DPOR-on and DPOR-off explorations over a large corpus of
//! generated protocols and assert the reports agree on every
//! observable: configurations visited, terminals, truncation, and the
//! canonical violation. The parallel engine is the subject (it is what
//! the `explore` CLI drives); depth-bounded levels make the comparison
//! exact, because the frontier advances one schedule step per level on
//! both sides, so a depth bound cuts whole levels identically with the
//! reduction on or off. (A `max_configs` cap, by contrast, cuts
//! mid-level in visit order and is legitimately order-dependent — the
//! unreduced comparison is only meaningful without it.)
//!
//! Protocol-family fixtures (racing/contrarian/ladder) get the same
//! treatment in the workspace-level `tests/parallel_determinism.rs`.

use rsim_smr::explore::{Explorer, ExploreReport, Limits};
use rsim_smr::gen::{fuzz::consensus_check, GenSpec};
use rsim_smr::system::System;

/// Limits for the generated corpus: depth-bounded, effectively
/// config-unbounded (see module docs for why that combination is the
/// sound one for on/off comparison).
const LIMITS: Limits = Limits { max_depth: 9, max_configs: 5_000_000 };

fn assert_equivalent(on: &ExploreReport, off: &ExploreReport, label: &str) {
    assert!(on.dpor, "{label}: reduction not active");
    assert!(!off.dpor, "{label}: escape hatch not recorded");
    assert_eq!(off.pruned, 0, "{label}: unreduced run reported pruning");
    assert_eq!(on.configs_visited, off.configs_visited, "{label}: configs_visited");
    assert_eq!(on.terminals, off.terminals, "{label}: terminals");
    assert_eq!(on.truncated, off.truncated, "{label}: truncated");
    assert_eq!(on.violation, off.violation, "{label}: violation");
}

fn explore(sys: &System, dpor: bool, threads: usize, check: &(dyn Fn(&System) -> Option<String> + Sync)) -> ExploreReport {
    Explorer::new(LIMITS)
        .with_threads(threads)
        .with_dpor(dpor)
        .explore_parallel(sys, check)
        .unwrap()
}

/// The headline gate: ≥256 generated protocols, DPOR on vs off, at 1
/// and 4 worker threads — identical verdicts and identical violation
/// sets everywhere, with real pruning observed across the corpus.
#[test]
fn differential_gate_over_generated_protocols() {
    let mut total_pruned = 0usize;
    let mut total_visited = 0usize;
    for seed in 0..256u64 {
        let spec = GenSpec::from_seed(seed);
        let sys = spec.build_system();
        let check = consensus_check(spec.inputs());
        let baseline = explore(&sys, true, 1, &check);
        for threads in [1usize, 4] {
            let on = explore(&sys, true, threads, &check);
            let off = explore(&sys, false, threads, &check);
            assert_equivalent(&on, &off, &format!("gen:{seed} threads={threads}"));
            // DPOR-on reports are additionally bit-identical across
            // thread counts, pruned tally included.
            assert_eq!(on.configs_visited, baseline.configs_visited, "gen:{seed}");
            assert_eq!(on.pruned, baseline.pruned, "gen:{seed} threads={threads}");
            assert_eq!(on.violation, baseline.violation, "gen:{seed}");
        }
        total_pruned += baseline.pruned;
        total_visited += baseline.configs_visited;
    }
    assert!(
        total_pruned > 0,
        "no pruning anywhere in a 256-protocol corpus"
    );
    // The corpus-wide reduction should be substantial, not incidental.
    let factor = (total_visited + total_pruned) as f64 / total_visited as f64;
    assert!(factor > 1.05, "corpus reduction factor only {factor:.3}");
}

/// A violating check (any single process having decided) fires on
/// interior configurations: the canonical violation schedule must be
/// the same with the reduction on or off.
#[test]
fn canonical_violation_is_reduction_invariant() {
    use rsim_smr::process::ProcessId;
    for seed in [3u64, 17, 42, 101, 255] {
        let spec = GenSpec::from_seed(seed);
        let sys = spec.build_system();
        let check = |sys: &System| -> Option<String> {
            sys.output(ProcessId(0)).map(|v| format!("p0 decided {v}"))
        };
        for threads in [1usize, 4] {
            let on = explore(&sys, true, threads, &check);
            let off = explore(&sys, false, threads, &check);
            assert_equivalent(&on, &off, &format!("gen:{seed} threads={threads}"));
        }
    }
}

/// Sequential DFS on/off: on non-truncated explorations the visited
/// set, terminal count, and verdict must agree exactly. The full
/// generated protocols are obstruction-free (adversarial schedules
/// run unboundedly, so no finite limits avoid truncation); the
/// wait-free *scripted* variant of each spec terminates, giving a
/// finite state space the DFS exhausts completely — which is exactly
/// the regime where sequential on/off reports must coincide.
#[test]
fn sequential_gate_on_scripted_protocols() {
    use rsim_smr::object::{Object, ObjectId};
    use rsim_smr::process::{Process, SnapshotProcess};

    let limits = Limits { max_depth: 64, max_configs: 5_000_000 };
    let mut total_pruned = 0usize;
    for seed in 0..64u64 {
        let spec = GenSpec::from_seed(seed);
        let m = spec.total_components();
        let processes: Vec<Box<dyn Process>> = (0..spec.build_system().process_count())
            .map(|i| {
                Box::new(SnapshotProcess::new(
                    spec.script_protocol(i, m, i as i64 + 1),
                    ObjectId(0),
                )) as Box<dyn Process>
            })
            .collect();
        let sys = rsim_smr::system::System::new(vec![Object::snapshot(m)], processes);
        let on = Explorer::new(limits).explore(&sys, &mut |_| None).unwrap();
        let off = Explorer::new(limits)
            .with_dpor(false)
            .explore(&sys, &mut |_| None)
            .unwrap();
        assert!(!on.truncated && !off.truncated, "gen:{seed}: truncated");
        assert_eq!(on.configs_visited, off.configs_visited, "gen:{seed}");
        assert_eq!(on.terminals, off.terminals, "gen:{seed}");
        assert_eq!(on.violation, off.violation, "gen:{seed}");
        assert_eq!(off.pruned, 0, "gen:{seed}");
        total_pruned += on.pruned;
    }
    assert!(total_pruned > 0, "no sequential pruning across the corpus");
}
