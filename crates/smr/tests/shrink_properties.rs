//! Property-based tests for the ddmin counterexample shrinker: over
//! arbitrary decision sequences (and arbitrary planted fault plans),
//! shrinking must preserve the violation fingerprint, never grow the
//! counterexample, and be idempotent — a second pass removes nothing.

use proptest::prelude::*;
use rsim_smr::fault::FaultPlan;
use rsim_smr::object::{Object, ObjectId};
use rsim_smr::process::{
    Process, ProcessId, ProtocolStep, SnapshotProcess, SnapshotProtocol,
};
use rsim_smr::shrink::{execute, shrink, Counterexample};
use rsim_smr::system::System;
use rsim_smr::value::Value;

/// scan → Update(0, input) → scan → Output(view[0]).
#[derive(Clone, Debug)]
struct WriteThenRead {
    input: i64,
    wrote: bool,
}

impl SnapshotProtocol for WriteThenRead {
    fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
        if self.wrote {
            ProtocolStep::Output(view[0].clone())
        } else {
            self.wrote = true;
            ProtocolStep::Update(0, Value::Int(self.input))
        }
    }
    fn components(&self) -> usize {
        1
    }
}

fn two_writers() -> System {
    let mk = |input| {
        Box::new(SnapshotProcess::new(
            WriteThenRead { input, wrote: false },
            ObjectId(0),
        )) as Box<dyn Process>
    };
    System::new(vec![Object::snapshot(1)], vec![mk(1), mk(2)])
}

/// Flags runs where p0 read p1's value.
fn p0_read_two(sys: &System, _crashed: &[ProcessId]) -> Option<String> {
    sys.output(ProcessId(0))
        .filter(|v| *v == Value::Int(2))
        .map(|_| "p0 observed p1's write".to_string())
}

proptest! {
    #[test]
    fn shrinking_preserves_the_fingerprint_and_never_grows(
        raw in proptest::collection::vec(0usize..2, 0..14),
    ) {
        let cex = Counterexample::faultless(
            raw.iter().map(|&p| ProcessId(p)).collect(),
        );
        let factory = two_writers;
        let before = execute(&factory, &cex, &p0_read_two);
        let (shrunk, report) = shrink(&cex, &factory, &p0_read_two);
        prop_assert!(
            shrunk.size() <= cex.size(),
            "shrinker grew {} -> {}", cex.size(), shrunk.size()
        );
        let after = execute(&factory, &shrunk, &p0_read_two);
        match before.fingerprint() {
            Some(target) => {
                // Violating inputs keep their exact fingerprint.
                prop_assert_eq!(report.fingerprint, Some(target));
                prop_assert_eq!(after.fingerprint(), Some(target));
            }
            None => {
                // Non-violating inputs are returned unchanged.
                prop_assert_eq!(&shrunk, &cex);
                prop_assert_eq!(report.fingerprint, None);
            }
        }
    }

    #[test]
    fn shrinking_is_idempotent_on_arbitrary_schedules(
        raw in proptest::collection::vec(0usize..2, 0..14),
    ) {
        let cex = Counterexample::faultless(
            raw.iter().map(|&p| ProcessId(p)).collect(),
        );
        let factory = two_writers;
        let (once, _) = shrink(&cex, &factory, &p0_read_two);
        let (twice, report) = shrink(&once, &factory, &p0_read_two);
        prop_assert_eq!(&twice, &once, "second pass removed something");
        prop_assert_eq!(report.original_decisions, report.shrunk_decisions);
        prop_assert_eq!(report.original_faults, report.shrunk_faults);
    }

    #[test]
    fn planted_faults_shrink_jointly_with_decisions(
        raw in proptest::collection::vec(0usize..2, 0..12),
        victim in 0usize..2,
        step in 0usize..6,
    ) {
        // A planted crash composes with an arbitrary schedule; the
        // joint shrink must stay a violation (when one exists) and
        // never grow on either axis.
        let plan = FaultPlan::parse(&format!("crash@{victim}:{step}")).unwrap();
        let cex = Counterexample {
            decisions: raw.iter().map(|&p| ProcessId(p)).collect(),
            plan,
        };
        let factory = two_writers;
        let before = execute(&factory, &cex, &p0_read_two);
        let (shrunk, report) = shrink(&cex, &factory, &p0_read_two);
        prop_assert!(shrunk.decisions.len() <= cex.decisions.len());
        prop_assert!(shrunk.plan.faults.len() <= cex.plan.faults.len());
        if let Some(target) = before.fingerprint() {
            let after = execute(&factory, &shrunk, &p0_read_two);
            prop_assert_eq!(after.fingerprint(), Some(target));
            prop_assert_eq!(report.fingerprint, Some(target));
        }
    }
}
