//! Durability regressions for the campaign's persistent artifacts: a
//! torn write (power loss, SIGKILL mid-`write(2)`) must never be
//! mistaken for a valid checkpoint, and the atomic writers must leave
//! either the old bytes or the new bytes — never a blend, never a
//! stray temp file.

use rsim_smr::campaign::{CampaignCheckpoint, RunRecord};
use rsim_smr::json::{write_atomic, write_atomic_new};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("rsim-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn checkpoint() -> CampaignCheckpoint {
    let record = |seed: u64, violation: Option<&str>| RunRecord {
        scheduler: "random".into(),
        seed,
        steps: 40 + seed as usize,
        terminated: true,
        violation: violation.map(str::to_string),
        error: None,
        attempts: 1,
        pruned: 0,
        prefilter_hits: 0,
        static_indep_pairs: 0,
    };
    CampaignCheckpoint {
        spec: Some("protocol=racing sched=random seeds=0+40 budget=500".into()),
        completed: vec![
            (0, record(0, None)),
            (3, record(3, Some("outputs disagree: \"1\" vs \"2\""))),
            (7, record(7, None)),
        ],
        fingerprints: vec![11, 42, u64::MAX - 1],
    }
}

/// The torn-write sweep: a checkpoint truncated at *every* byte offset
/// must fail closed. `parse` may only succeed when the surviving prefix
/// still encodes the complete checkpoint (i.e. the tear cost nothing
/// but trailing whitespace) — a partial record list silently parsing as
/// a shorter campaign would corrupt every resumed aggregate.
#[test]
fn checkpoint_truncated_at_every_byte_offset_fails_closed() {
    let full = checkpoint();
    let json = full.to_json();
    for cut in 0..json.len() {
        let Some(torn) = json.get(..cut) else {
            continue; // mid-UTF-8 boundary: unrepresentable as &str
        };
        match CampaignCheckpoint::parse(torn) {
            Err(e) => {
                // Structured, named error — not a panic, not a unit value.
                let msg = e.to_string().to_lowercase();
                assert!(
                    msg.contains("checkpoint") || msg.contains("json"),
                    "cut at {cut}: unhelpful error {e}"
                );
            }
            Ok(parsed) => assert_eq!(
                parsed.to_json(),
                json,
                "cut at {cut} parsed as a DIFFERENT checkpoint"
            ),
        }
    }
}

/// Same sweep at the filesystem level, through `load`: truncate the
/// on-disk file to every prefix length and require a structured error
/// or the identical checkpoint back.
#[test]
fn checkpoint_file_truncation_fails_closed_through_load() {
    let dir = tmp_dir("load");
    let path = dir.join("campaign.checkpoint.json");
    let full = checkpoint();
    let json = full.to_json();
    write_atomic(&path, &json).unwrap();
    assert_eq!(
        CampaignCheckpoint::load(&path).unwrap().to_json(),
        json,
        "untruncated file must round-trip"
    );
    for keep in 0..json.len() as u64 {
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(keep).unwrap();
        drop(file);
        if let Ok(parsed) = CampaignCheckpoint::load(&path) {
            assert_eq!(
                parsed.to_json(),
                json,
                "truncation to {keep} bytes parsed as a different checkpoint"
            );
        }
        // Restore for the next iteration.
        write_atomic(&path, &json).unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `write_atomic` replaces the whole file and cleans up after itself:
/// after any number of writes there is exactly one file in the
/// directory (no abandoned `.tmp`s) holding exactly the last payload.
#[test]
fn write_atomic_replaces_wholesale_and_leaves_no_temp_files() {
    let dir = tmp_dir("atomic");
    let path = dir.join("report.json");
    write_atomic(&path, "{\"v\": 1}\n").unwrap();
    write_atomic(&path, "{\"v\": 2, \"longer\": true}\n").unwrap();
    write_atomic(&path, "{\"v\": 3}\n").unwrap();
    assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\": 3}\n");
    let entries: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(entries, vec!["report.json"], "stray files: {entries:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `write_atomic_new` is create-if-absent: the first writer wins, later
/// writers get `Ok(false)` and must not disturb the original bytes.
#[test]
fn write_atomic_new_first_writer_wins() {
    let dir = tmp_dir("new");
    let path = dir.join("cex-0000000000000017.bundle.json");
    assert!(write_atomic_new(&path, "first\n").unwrap());
    assert!(!write_atomic_new(&path, "second\n").unwrap());
    assert_eq!(std::fs::read_to_string(&path).unwrap(), "first\n");
    let entries: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(entries.len(), 1, "stray files: {entries:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
