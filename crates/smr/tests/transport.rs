//! TCP transport acceptance: handshake fail-closed, session
//! resumption inside the lease window, requeue-after-expiry, and
//! corrupt-peer accounting — all driven through `--workers 0` external
//! fleet mode, with the test playing the worker over a raw socket so
//! every wire event is scripted exactly.

use rsim_smr::campaign::{CampaignConfig, RunRecord, SchedulerSpec};
use rsim_smr::service::{
    encode_frame, read_frame, run_service_with_transport, write_frame,
    CoordMsg, ServiceOptions, ServiceSpec, ShardResult, Transport, WorkUnit,
    WorkerMsg, PROTO_VERSION,
};
use std::io::{BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn spec() -> ServiceSpec {
    ServiceSpec {
        system: vec![
            ("kind".into(), "campaign".into()),
            ("protocol".into(), "racing".into()),
        ],
        config: CampaignConfig {
            schedulers: vec![SchedulerSpec::RoundRobin],
            seed_start: 0,
            runs: 2,
            budget: 100,
            threads: 1,
        },
        unit_runs: 2, // One unit: every test scripts a single lease.
        faults: Vec::new(),
    }
}

fn base_dir(tag: &str) -> PathBuf {
    let base = std::env::temp_dir()
        .join(format!("rsim-transport-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    base
}

/// Starts the service on a background thread with an external (zero
/// spawned workers) TCP fleet; returns the dial address and the join
/// handle for the merged outcome.
fn start_service(
    base: &Path,
    lease_timeout: Duration,
) -> (String, std::thread::JoinHandle<rsim_smr::service::ServiceOutcome>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let mut opts = ServiceOptions::new(
        base.join("state"),
        base.join("corpus"),
        Vec::new(),
    );
    opts.workers = 0;
    opts.lease_timeout = lease_timeout;
    opts.retry_backoff = Duration::from_millis(1);
    let handle = std::thread::spawn(move || {
        run_service_with_transport(&spec(), &opts, &Transport::Tcp(listener))
            .unwrap()
    });
    (addr, handle)
}

/// A scripted worker: one connection, one persistent reader (so no
/// handshake bytes are ever lost between reads).
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn hello(
        &mut self,
        version: u32,
        session: Option<u64>,
        spec_id: Option<String>,
    ) -> CoordMsg {
        self.send(&WorkerMsg::Hello { version, session, spec_id, tag: None });
        self.read()
    }

    fn send(&mut self, msg: &WorkerMsg) {
        write_frame(&mut self.stream, &msg.to_json()).unwrap();
    }

    fn read(&mut self) -> CoordMsg {
        let payload = read_frame(&mut self.reader)
            .unwrap()
            .expect("coordinator closed the connection");
        CoordMsg::parse(&payload).unwrap()
    }

    fn expect_lease(&mut self) -> WorkUnit {
        match self.read() {
            CoordMsg::Lease { unit, .. } => unit,
            other => panic!("expected a lease, got {other:?}"),
        }
    }
}

/// A well-formed shard for `unit`, as a real worker would report it.
fn shard_for(unit: &WorkUnit) -> ShardResult {
    ShardResult {
        unit: unit.id,
        records: (0..unit.runs)
            .map(|i| {
                (
                    unit.index_base + i,
                    RunRecord {
                        scheduler: unit.scheduler.clone(),
                        seed: unit.seed_start + i as u64,
                        steps: 3,
                        terminated: true,
                        violation: None,
                        error: None,
                        attempts: 1,
                        pruned: 0,
                        prefilter_hits: 0,
                        static_indep_pairs: 0,
                    },
                )
            })
            .collect(),
        fault_records: Vec::new(),
        fingerprints: vec![41, 42],
        degraded_runs: 0,
        cache_truncated: false,
    }
}

/// A worker that loses its connection mid-lease and reconnects inside
/// the lease window presents its session token, resumes the session,
/// and completes the unit — one lease, zero requeues, zero burned
/// attempts.
#[test]
fn resumed_session_reclaims_its_lease_without_burning_an_attempt() {
    let base = base_dir("resume");
    let (addr, svc) = start_service(&base, Duration::from_secs(10));

    let mut first = Client::connect(&addr);
    let CoordMsg::Welcome { session, spec_id, .. } =
        first.hello(PROTO_VERSION, None, None)
    else {
        panic!("expected a welcome");
    };
    let unit = first.expect_lease();
    drop(first); // The network blip: connection lost, lease still live.

    let mut second = Client::connect(&addr);
    match second.hello(PROTO_VERSION, Some(session), Some(spec_id)) {
        CoordMsg::Welcome { session: resumed, .. } => {
            assert_eq!(resumed, session, "resume keeps the session token");
        }
        other => panic!("expected a resumed welcome, got {other:?}"),
    }
    // The lease survived the blip: no fresh lease frame is owed, the
    // worker just finishes what it was doing.
    second.send(&WorkerMsg::Result { unit: unit.id, shard: shard_for(&unit) });

    let outcome = svc.join().unwrap();
    assert_eq!(outcome.stats.sessions, 1);
    assert_eq!(outcome.stats.resumed_sessions, 1);
    assert_eq!(outcome.stats.leases, 1, "the blip burned no lease attempt");
    assert_eq!(outcome.stats.requeues, 0);
    assert_eq!(outcome.report.campaign().total_runs, 2);
    assert_eq!(outcome.summary.claims[0].retried_units, 0);
    let _ = std::fs::remove_dir_all(&base);
}

/// A worker that goes silent past the lease window loses the lease —
/// the coordinator severs it and requeues with an attempt burned — but
/// the unit completes when the worker comes back.
#[test]
fn expired_lease_requeues_and_a_reconnect_completes_the_unit() {
    let base = base_dir("expiry");
    let (addr, svc) = start_service(&base, Duration::from_millis(300));

    let mut worker = Client::connect(&addr);
    let CoordMsg::Welcome { session, spec_id, .. } =
        worker.hello(PROTO_VERSION, None, None)
    else {
        panic!("expected a welcome");
    };
    let _unit = worker.expect_lease();
    // Silence: no heartbeat, no result. The lease must expire.
    std::thread::sleep(Duration::from_millis(900));

    let mut back = Client::connect(&addr);
    match back.hello(PROTO_VERSION, Some(session), Some(spec_id)) {
        CoordMsg::Welcome { .. } => {}
        other => panic!("expected a welcome, got {other:?}"),
    }
    let unit = back.expect_lease(); // The requeued unit, attempt two.
    back.send(&WorkerMsg::Result { unit: unit.id, shard: shard_for(&unit) });

    let outcome = svc.join().unwrap();
    assert_eq!(outcome.stats.requeues, 1, "the expiry burned an attempt");
    assert_eq!(outcome.stats.leases, 2);
    assert_eq!(outcome.stats.quarantined_units, 0);
    assert_eq!(outcome.report.campaign().total_runs, 2);
    assert_eq!(
        outcome.summary.claims[0].retried_units, 1,
        "the summary records the retried unit"
    );
    let _ = std::fs::remove_dir_all(&base);
}

/// Version and spec-id mismatches fail closed (fatal reject: the
/// worker must not retry), an unknown session token is a non-fatal
/// reject (retry fresh), and none of them create sessions.
#[test]
fn handshake_fails_closed_on_version_and_spec_mismatch() {
    let base = base_dir("handshake");
    let (addr, svc) = start_service(&base, Duration::from_secs(10));

    let mut wrong_version = Client::connect(&addr);
    match wrong_version.hello(PROTO_VERSION + 1, None, None) {
        CoordMsg::Reject { reason, fatal } => {
            assert!(fatal, "version mismatch can never heal");
            assert!(reason.contains("protocol version"), "{reason}");
        }
        other => panic!("expected a reject, got {other:?}"),
    }

    let mut wrong_spec = Client::connect(&addr);
    match wrong_spec.hello(PROTO_VERSION, None, Some("bogus-campaign".into())) {
        CoordMsg::Reject { reason, fatal } => {
            assert!(fatal, "a worker from another campaign must not join");
            assert!(reason.contains("spec mismatch"), "{reason}");
        }
        other => panic!("expected a reject, got {other:?}"),
    }

    let mut stale = Client::connect(&addr);
    match stale.hello(PROTO_VERSION, Some(7), None) {
        CoordMsg::Reject { reason, fatal } => {
            assert!(!fatal, "an unknown token just means: retry fresh");
            assert!(reason.contains("session"), "{reason}");
        }
        other => panic!("expected a reject, got {other:?}"),
    }

    let mut good = Client::connect(&addr);
    assert!(matches!(
        good.hello(PROTO_VERSION, None, None),
        CoordMsg::Welcome { .. }
    ));
    let unit = good.expect_lease();
    good.send(&WorkerMsg::Result { unit: unit.id, shard: shard_for(&unit) });

    let outcome = svc.join().unwrap();
    assert_eq!(outcome.stats.sessions, 1, "rejects never became sessions");
    assert_eq!(outcome.stats.resumed_sessions, 0);
    assert_eq!(outcome.report.campaign().total_runs, 2);
    let _ = std::fs::remove_dir_all(&base);
}

/// A corrupt frame is a *corrupt peer*, not a slow one: the checksum
/// rejects it at the wire, the lease attempt is burned immediately
/// (repeat offenders converge to quarantine), and the event is counted
/// — but the session itself may reconnect and make amends.
#[test]
fn corrupt_worker_frame_burns_a_lease_attempt() {
    let base = base_dir("corrupt");
    let (addr, svc) = start_service(&base, Duration::from_secs(10));

    let mut worker = Client::connect(&addr);
    let CoordMsg::Welcome { session, spec_id, .. } =
        worker.hello(PROTO_VERSION, None, None)
    else {
        panic!("expected a welcome");
    };
    let _unit = worker.expect_lease();
    // Damage the last payload byte of an otherwise well-formed frame:
    // the checksum must reject it before it ever parses.
    let mut bytes =
        encode_frame(&WorkerMsg::Heartbeat { unit: 0 }.to_json()).into_bytes();
    *bytes.last_mut().unwrap() ^= 0x01;
    worker.stream.write_all(&bytes).unwrap();

    let mut back = Client::connect(&addr);
    match back.hello(PROTO_VERSION, Some(session), Some(spec_id)) {
        CoordMsg::Welcome { .. } => {}
        other => panic!("expected a welcome, got {other:?}"),
    }
    let unit = back.expect_lease(); // Requeued: the corrupt frame cost one.
    back.send(&WorkerMsg::Result { unit: unit.id, shard: shard_for(&unit) });

    let outcome = svc.join().unwrap();
    assert_eq!(outcome.stats.corrupt_frames, 1);
    assert_eq!(outcome.stats.requeues, 1, "corruption burns the attempt");
    assert_eq!(outcome.stats.resumed_sessions, 1);
    assert_eq!(outcome.stats.quarantined_units, 0);
    assert_eq!(outcome.report.campaign().total_runs, 2);
    assert_eq!(outcome.summary.corrupt_frames, 1);
    let _ = std::fs::remove_dir_all(&base);
}
