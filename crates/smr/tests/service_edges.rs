//! Supervisor edge cases at the service boundary: what a worker
//! process's supervised campaign produces in its shard, and what the
//! coordinator's merge layer makes of it, when cells panic past the
//! retry budget or time out on the final unit.

use rsim_smr::campaign::{
    run_campaign_with, CampaignCheckpoint, CampaignConfig, CampaignOptions,
    SchedulerSpec,
};
use rsim_smr::object::{Object, ObjectId};
use rsim_smr::process::{Process, ProtocolStep, SnapshotProcess, SnapshotProtocol};
use rsim_smr::service::{merge_report, ShardResult};
use rsim_smr::system::System;
use rsim_smr::value::Value;
use std::time::Duration;

/// Writes once, then outputs: terminates quickly under any scheduler.
#[derive(Clone, Debug)]
struct WriteOnce {
    wrote: bool,
}

impl SnapshotProtocol for WriteOnce {
    fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
        if self.wrote {
            ProtocolStep::Output(view[0].clone())
        } else {
            self.wrote = true;
            ProtocolStep::Update(0, Value::Int(7))
        }
    }
    fn components(&self) -> usize {
        1
    }
}

/// Updates forever; never terminates — the pathological cell.
#[derive(Clone, Debug)]
struct Spinner;

impl SnapshotProtocol for Spinner {
    fn on_scan(&mut self, _view: &[Value]) -> ProtocolStep {
        ProtocolStep::Update(0, Value::Int(0))
    }
    fn components(&self) -> usize {
        1
    }
}

fn one_process(p: impl SnapshotProtocol + 'static) -> System {
    System::new(
        vec![Object::snapshot(1)],
        vec![Box::new(SnapshotProcess::new(p, ObjectId(0))) as Box<dyn Process>],
    )
}

/// A worker whose cell panics on every attempt exhausts the retry
/// budget, records the failure with its attempt count — and that
/// record must survive the shard → merge path: the merged report shows
/// the retried run, the structured worker-panic failure, and the
/// shard's degraded count, with nothing silently dropped.
#[test]
fn retry_exhaustion_surfaces_in_the_merged_report() {
    let config = CampaignConfig {
        schedulers: vec![SchedulerSpec::RoundRobin],
        seed_start: 0,
        runs: 3,
        budget: 200,
        threads: 1,
    };
    let exploding = |seed: u64| {
        assert!(seed != 1, "persistent failure for seed 1");
        one_process(WriteOnce { wrote: false })
    };
    let options = CampaignOptions {
        retries: 2,
        retry_backoff: Duration::from_micros(10),
        ..CampaignOptions::default()
    };
    // This is exactly the worker's execution path for a 3-run unit.
    let report = run_campaign_with(&config, &options, exploding, &|_| None);
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].attempts, 3, "1 try + 2 retries");

    // Rebuild the records as the worker's shard and merge it the way
    // the coordinator does.
    let mut records = Vec::new();
    for r in &report.failures {
        records.push((r.seed as usize, r.clone()));
    }
    // The two clean runs (seeds 0, 2) are not in `failures`; synthesize
    // them the way a full shard carries them.
    for seed in [0u64, 2] {
        records.push((
            seed as usize,
            rsim_smr::campaign::RunRecord {
                scheduler: "rr".into(),
                seed,
                steps: 3,
                terminated: true,
                violation: None,
                error: None,
                attempts: 1,
                pruned: 0,
                prefilter_hits: 0,
                static_indep_pairs: 0,
            },
        ));
    }
    let shard = ShardResult {
        unit: 0,
        records,
        fault_records: Vec::new(),
        fingerprints: vec![1, 2, 3],
        degraded_runs: 1,
        cache_truncated: false,
    };
    let merged = merge_report(&config, &[shard], 0);
    assert_eq!(merged.total_runs, 3);
    assert_eq!(merged.retried_runs, 1, "exhausted retries stay visible");
    assert_eq!(merged.degraded_runs, 1, "shard degradation propagates");
    assert_eq!(merged.failures.len(), 1);
    let err = merged.failures[0].error.as_deref().unwrap();
    assert!(err.contains("worker panic"), "error was: {err}");
    let json = merged.to_json();
    assert!(json.contains("\"retried_runs\": 1"), "report: {json}");
    assert!(json.contains("\"degraded_runs\": 1"), "report: {json}");
}

/// A cell timeout on the campaign's *final* cell must still flush the
/// terminal checkpoint — the worker's shard payload — containing the
/// structured timeout record. A lost final flush would strand the last
/// unit in lease/requeue limbo forever.
#[test]
fn cell_timeout_on_final_cell_still_flushes_terminal_checkpoint() {
    let dir = std::env::temp_dir().join(format!(
        "rsim-service-edges-timeout-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("unit-0.checkpoint.json");

    let config = CampaignConfig {
        schedulers: vec![SchedulerSpec::RoundRobin],
        seed_start: 0,
        runs: 2,
        budget: usize::MAX,
        threads: 1,
    };
    // Seed 0 terminates; seed 1 — the final cell — spins until the
    // timeout fires.
    let factory = |seed: u64| {
        if seed == 0 {
            one_process(WriteOnce { wrote: false })
        } else {
            one_process(Spinner)
        }
    };
    let options = CampaignOptions {
        cell_timeout: Some(Duration::from_millis(20)),
        checkpoint_every: Some(1),
        checkpoint_path: Some(path.clone()),
        spec_id: Some("unit=0 test".into()),
        ..CampaignOptions::default()
    };
    let report = run_campaign_with(&config, &options, factory, &|_| None);
    assert_eq!(report.total_runs, 2, "the timed-out cell is recorded");

    let checkpoint = CampaignCheckpoint::load(&path).expect("terminal checkpoint");
    assert_eq!(checkpoint.spec.as_deref(), Some("unit=0 test"));
    assert_eq!(
        checkpoint.completed.len(),
        2,
        "terminal flush covers every cell, including the timed-out last one"
    );
    let (_, last) = checkpoint
        .completed
        .iter()
        .find(|(index, _)| *index == 1)
        .expect("final cell present");
    let err = last.error.as_deref().expect("timeout recorded as error");
    assert!(err.contains("cell timeout"), "error was: {err}");

    // The shard built from that checkpoint merges with nothing lost.
    let shard = ShardResult {
        unit: 0,
        records: checkpoint.completed.clone(),
        fault_records: Vec::new(),
        fingerprints: checkpoint.fingerprints.clone(),
        degraded_runs: 0,
        cache_truncated: false,
    };
    let merged = merge_report(&config, &[shard], 0);
    assert_eq!(merged.skipped_runs, 0, "no silent loss");
    assert_eq!(merged.failures.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
