//! Property-based tests for the shared-memory runtime: object
//! sequential specifications, scheduler determinism, trace/summary
//! invariants, and configuration indistinguishability.

use proptest::prelude::*;
use rsim_smr::fingerprint::fingerprint;
use rsim_smr::object::{Object, ObjectId, Operation, Response};
use rsim_smr::process::{Process, ProcessId, ProtocolStep, SnapshotProcess, SnapshotProtocol};
use rsim_smr::sched::{Fixed, Random};
use rsim_smr::system::System;
use rsim_smr::trace::summarize;
use rsim_smr::value::Value;

/// A protocol that performs a scripted sequence of updates.
#[derive(Clone, Debug)]
struct Scripted {
    script: Vec<(usize, i64)>,
    pos: usize,
    m: usize,
}

impl SnapshotProtocol for Scripted {
    fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
        if self.pos >= self.script.len() {
            return ProtocolStep::Output(view[0].clone());
        }
        let (c, v) = self.script[self.pos];
        self.pos += 1;
        ProtocolStep::Update(c % self.m, Value::Int(v))
    }
    fn components(&self) -> usize {
        self.m
    }
}

fn scripted_system(scripts: Vec<Vec<(usize, i64)>>, m: usize) -> System {
    let processes: Vec<Box<dyn Process>> = scripts
        .into_iter()
        .map(|script| {
            Box::new(SnapshotProcess::new(
                Scripted { script, pos: 0, m },
                ObjectId(0),
            )) as Box<dyn Process>
        })
        .collect();
    System::new(vec![Object::snapshot(m)], processes)
}

fn script() -> impl Strategy<Value = Vec<(usize, i64)>> {
    proptest::collection::vec((0usize..4, 0i64..50), 0..6)
}

proptest! {
    #[test]
    fn register_semantics_last_write_wins(writes in proptest::collection::vec(0i64..100, 1..20)) {
        let mut reg = Object::register();
        for &w in &writes {
            reg.apply(&Operation::Write { obj: ObjectId(0), value: Value::Int(w) })
                .unwrap();
        }
        let got = reg.apply(&Operation::Read { obj: ObjectId(0) }).unwrap();
        prop_assert_eq!(got, Response::Value(Value::Int(*writes.last().unwrap())));
    }

    #[test]
    fn snapshot_scan_reflects_componentwise_last_writes(
        updates in proptest::collection::vec((0usize..3, 0i64..100), 0..20)
    ) {
        let mut snap = Object::snapshot(3);
        let mut expected = vec![Value::Nil; 3];
        for &(c, v) in &updates {
            snap.apply(&Operation::Update { obj: ObjectId(0), component: c, value: Value::Int(v) })
                .unwrap();
            expected[c] = Value::Int(v);
        }
        let got = snap.apply(&Operation::Scan { obj: ObjectId(0) }).unwrap();
        prop_assert_eq!(got, Response::View(expected));
    }

    #[test]
    fn max_register_holds_running_maximum(
        writes in proptest::collection::vec(0i64..100, 1..20)
    ) {
        let mut mr = Object::max_register(1);
        for &w in &writes {
            mr.apply(&Operation::WriteMax { obj: ObjectId(0), component: 0, value: Value::Int(w) })
                .unwrap();
        }
        let got = mr.apply(&Operation::Scan { obj: ObjectId(0) }).unwrap();
        prop_assert_eq!(
            got,
            Response::View(vec![Value::Int(*writes.iter().max().unwrap())])
        );
    }

    #[test]
    fn random_scheduler_is_deterministic_per_seed(
        s0 in script(), s1 in script(), seed in 0u64..1000,
    ) {
        let mut a = scripted_system(vec![s0.clone(), s1.clone()], 4);
        let mut b = scripted_system(vec![s0, s1], 4);
        a.run(&mut Random::seeded(seed), 10_000).unwrap();
        b.run(&mut Random::seeded(seed), 10_000).unwrap();
        prop_assert_eq!(a.trace(), b.trace());
        prop_assert!(a.indistinguishable(&b));
    }

    #[test]
    fn fixed_schedules_replay_their_input(
        s0 in script(), s1 in script(), order in proptest::collection::vec(0usize..2, 0..20),
    ) {
        let mut sys = scripted_system(vec![s0, s1], 4);
        let schedule: Vec<ProcessId> = order.iter().map(|&p| ProcessId(p)).collect();
        sys.run(&mut Fixed::new(schedule.clone()), 10_000).unwrap();
        // Every executed step belongs to the schedule, in order (with
        // terminated processes skipped).
        let executed: Vec<ProcessId> = sys.trace().iter().map(|e| e.pid).collect();
        let mut it = schedule.iter();
        for pid in &executed {
            prop_assert!(it.any(|s| s == pid), "step {pid} not in schedule order");
        }
    }

    #[test]
    fn trace_summary_totals_are_consistent(
        s0 in script(), s1 in script(), seed in 0u64..100,
    ) {
        let mut sys = scripted_system(vec![s0, s1], 4);
        sys.run(&mut Random::seeded(seed), 10_000).unwrap();
        let sum = summarize(sys.trace());
        prop_assert_eq!(sum.total, sys.trace().len());
        let per: usize = sum.steps_per_process.values().sum();
        prop_assert_eq!(per, sum.total);
        let muts: usize = sum.mutations_per_process.values().sum();
        prop_assert!(muts <= sum.total);
    }

    #[test]
    fn space_complexity_counts_components(m in 1usize..10, extra_regs in 0usize..5) {
        let mut objects = vec![Object::snapshot(m)];
        for _ in 0..extra_regs {
            objects.push(Object::register());
        }
        let sys = System::new(objects, vec![]);
        prop_assert_eq!(sys.space_complexity(), m + extra_regs);
    }

    #[test]
    fn cloned_systems_diverge_only_by_their_steps(
        s0 in script(), s1 in script(),
    ) {
        prop_assume!(!s0.is_empty());
        let mut sys = scripted_system(vec![s0, s1], 4);
        let fork = sys.clone();
        prop_assert!(sys.indistinguishable(&fork));
        sys.step(ProcessId(0)).unwrap();
        // One step differentiates the configurations (the process's
        // state changed: it advanced from scan to update).
        prop_assert!(!sys.indistinguishable(&fork));
    }

    // --- Configuration identity: streaming hash vs legacy string. ---

    #[test]
    fn streamed_fingerprint_matches_legacy_string_at_every_step(
        s0 in script(), s1 in script(), seed in 0u64..500,
    ) {
        // The zero-allocation streaming hash must stay bit-identical to
        // FNV-1a over the materialised `config_key` string — at the
        // initial configuration and after every step of a run.
        let mut sys = scripted_system(vec![s0, s1], 4);
        prop_assert_eq!(sys.config_fingerprint(), fingerprint(&sys.config_key()));
        let mut sched = Random::seeded(seed);
        while !sys.all_terminated() {
            use rsim_smr::sched::Scheduler;
            let Some(pid) = sched.next(&sys) else { break };
            sys.step(pid).unwrap();
            prop_assert_eq!(
                sys.config_fingerprint(),
                fingerprint(&sys.config_key())
            );
        }
    }

    #[test]
    fn equal_configurations_hash_equal(
        s0 in script(), s1 in script(), seed in 0u64..500,
    ) {
        // Two independently built systems driven through the same
        // schedule reach equal configurations — and equal fingerprints.
        let mut a = scripted_system(vec![s0.clone(), s1.clone()], 4);
        let mut b = scripted_system(vec![s0, s1], 4);
        a.run(&mut Random::seeded(seed), 10_000).unwrap();
        b.run(&mut Random::seeded(seed), 10_000).unwrap();
        prop_assert!(a.indistinguishable(&b));
        prop_assert_eq!(a.config_fingerprint(), b.config_fingerprint());
        prop_assert_eq!(a.config_key(), b.config_key());
    }

    // --- Copy-on-write forking behaves exactly like deep cloning. ---

    #[test]
    fn cow_fork_is_indistinguishable_from_deep_replay(
        s0 in script(), s1 in script(), seed in 0u64..200,
        extra in proptest::collection::vec(0usize..2, 0..10),
    ) {
        // Run a prefix, freeze the trace (as the explorer does before
        // fanning out), fork, and let the fork diverge. The fork's
        // trace and configuration must match a from-scratch replay of
        // prefix + divergence, and the parent must be untouched.
        let mut sys = scripted_system(vec![s0.clone(), s1.clone()], 4);
        sys.run(&mut Random::seeded(seed), 7).unwrap();
        sys.freeze_trace();
        let parent_snapshot = sys.trace().to_vec();
        let parent_fp = sys.config_fingerprint();

        let mut fork = sys.clone();
        prop_assert_eq!(fork.trace(), sys.trace());
        for &p in &extra {
            let pid = ProcessId(p);
            if !fork.is_terminated(pid) {
                fork.step(pid).unwrap();
            }
        }

        // Replay the same steps on an independent deep copy.
        let mut replay = scripted_system(vec![s0, s1], 4);
        replay.run(&mut Random::seeded(seed), 7).unwrap();
        for &p in &extra {
            let pid = ProcessId(p);
            if !replay.is_terminated(pid) {
                replay.step(pid).unwrap();
            }
        }
        prop_assert_eq!(fork.trace(), replay.trace());
        prop_assert!(fork.indistinguishable(&replay));
        prop_assert_eq!(fork.config_fingerprint(), replay.config_fingerprint());

        // The shared prefix is immutable: the parent saw nothing.
        prop_assert_eq!(sys.trace().to_vec(), parent_snapshot);
        prop_assert_eq!(sys.config_fingerprint(), parent_fp);
    }
}
