//! `rsim-tasks`: colorless tasks and the impossibility substrate.
//!
//! * [`task`] — the colorless-task abstraction (paper §2) and its
//!   subset-closure property.
//! * [`agreement`] — consensus, k-set agreement, and ε-approximate
//!   agreement task validators.
//! * [`sperner`] — Sperner's lemma on iterated barycentric
//!   subdivisions: the combinatorial core of the wait-free k-set
//!   agreement impossibility the simulation reduces to.
//! * [`violation`] — counterexample search for concrete protocols
//!   (task violations and wait-freedom violations), used to exhibit the
//!   contradiction of Theorem 21 on extracted protocols.
//! * [`valence`] — FLP-style bivalence/criticality analysis of small
//!   systems: the configuration-graph structure underlying the
//!   impossibility proofs the paper reduces to.
//! * [`chain`] — terminal-configuration adjacency graphs: the
//!   connectivity argument behind the Hoest–Shavit step lower bound
//!   (and the FLP fatal-edge argument), computed exactly for small
//!   systems.
//!
//! # Example
//!
//! ```
//! use rsim_tasks::agreement::KSetAgreement;
//! use rsim_tasks::task::ColorlessTask;
//! use rsim_smr::value::Value;
//!
//! let task = KSetAgreement::new(2);
//! let inputs = [Value::Int(1), Value::Int(2), Value::Int(3)];
//! assert!(task.validate(&inputs, &[Value::Int(1), Value::Int(2)]).is_ok());
//! ```

pub mod agreement;
pub mod chain;
pub mod sperner;
pub mod task;
pub mod valence;
pub mod violation;

pub use agreement::{consensus, ApproximateAgreement, KSetAgreement};
pub use task::{ColorlessTask, TaskViolation};
pub use violation::Violation;
