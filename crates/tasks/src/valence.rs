//! Valence analysis: the FLP-style structure of agreement protocols.
//!
//! The impossibility results the revisionist simulation reduces to
//! (FLP \[25, 38\] and wait-free k-set agreement \[14, 34, 41\]) analyze
//! the *valence* of configurations: the set of values still decidable
//! from a configuration. A configuration is **bivalent** if at least
//! two different decisions are reachable, **univalent** otherwise; a
//! bivalent configuration all of whose successors are univalent is
//! **critical**, and the case analysis at critical configurations is
//! the engine of those proofs.
//!
//! This module computes valences exactly for small systems by building
//! the (deduplicated) reachable configuration graph and propagating
//! terminal outcomes to a fixpoint — cycles (non-terminating branches
//! of obstruction-free protocols) are handled by the fixpoint. It
//! exposes the counts and the critical configurations, and doubles as
//! a disagreement detector.

use rsim_smr::error::ModelError;
use rsim_smr::process::ProcessId;
use rsim_smr::system::System;
use rsim_smr::value::Value;
use std::collections::{BTreeSet, HashMap};

/// Limits for the valence graph construction.
#[derive(Clone, Copy, Debug)]
pub struct ValenceLimits {
    /// Maximum distinct configurations.
    pub max_configs: usize,
    /// Maximum schedule depth.
    pub max_depth: usize,
}

impl Default for ValenceLimits {
    fn default() -> Self {
        ValenceLimits { max_configs: 100_000, max_depth: 48 }
    }
}

/// The decisions reachable from one configuration: the set of distinct
/// *output sets* of reachable terminal configurations.
pub type Outcomes = BTreeSet<BTreeSet<Value>>;

/// Result of the valence analysis.
#[derive(Clone, Debug)]
pub struct ValenceReport {
    /// Distinct configurations explored.
    pub configs: usize,
    /// Terminal configurations.
    pub terminals: usize,
    /// Configurations from which ≥ 2 distinct single-valued decisions
    /// are reachable (bivalent in the consensus sense).
    pub bivalent: usize,
    /// Configurations with exactly one reachable decision.
    pub univalent: usize,
    /// Critical configurations: bivalent, with every successor
    /// univalent. Stored as (schedule, successor decisions).
    pub critical: Vec<(Vec<ProcessId>, Vec<Outcomes>)>,
    /// The outcomes reachable from the initial configuration.
    pub initial_outcomes: Outcomes,
    /// Whether some reachable terminal configuration contains two
    /// distinct output values (disagreement).
    pub disagreement_reachable: bool,
    /// Whether limits truncated the graph (valences are then lower
    /// bounds).
    pub truncated: bool,
}

impl ValenceReport {
    /// Is the initial configuration bivalent (≥ 2 reachable
    /// decisions)?
    pub fn initially_bivalent(&self) -> bool {
        self.initial_outcomes.len() >= 2
    }
}

/// Computes the valence structure of `initial`'s reachable graph.
///
/// # Errors
///
/// Propagates step errors from the runtime.
pub fn analyze(initial: &System, limits: ValenceLimits) -> Result<ValenceReport, ModelError> {
    // --- Build the reachable configuration graph (deduplicated). ---
    struct Node {
        system: System,
        succs: Vec<(ProcessId, usize)>,
        schedule: Vec<ProcessId>,
        terminal: bool,
    }
    let mut index: HashMap<u64, usize> = HashMap::new();
    let mut nodes: Vec<Node> = Vec::new();
    let mut truncated = false;

    let root_key = initial.config_fingerprint();
    index.insert(root_key, 0);
    nodes.push(Node {
        system: initial.clone(),
        succs: Vec::new(),
        schedule: Vec::new(),
        terminal: initial.all_terminated(),
    });
    let mut frontier = vec![0usize];
    while let Some(id) = frontier.pop() {
        if nodes[id].terminal {
            continue;
        }
        if nodes[id].schedule.len() >= limits.max_depth {
            truncated = true;
            continue;
        }
        let n = nodes[id].system.process_count();
        for p in (0..n).map(ProcessId) {
            if nodes[id].system.is_terminated(p) {
                continue;
            }
            let mut fork = nodes[id].system.clone();
            fork.step(p)?;
            let key = fork.config_fingerprint();
            let succ_id = match index.get(&key) {
                Some(&sid) => sid,
                None => {
                    if nodes.len() >= limits.max_configs {
                        truncated = true;
                        continue;
                    }
                    let sid = nodes.len();
                    index.insert(key, sid);
                    let mut schedule = nodes[id].schedule.clone();
                    schedule.push(p);
                    let terminal = fork.all_terminated();
                    nodes.push(Node { system: fork, succs: Vec::new(), schedule, terminal });
                    frontier.push(sid);
                    sid
                }
            };
            nodes[id].succs.push((p, succ_id));
        }
    }

    // --- Propagate outcomes to a fixpoint (handles cycles). ---
    let mut outcomes: Vec<Outcomes> = nodes
        .iter()
        .map(|node| {
            if node.terminal {
                let outs: BTreeSet<Value> = node
                    .system
                    .outputs()
                    .into_iter()
                    .flatten()
                    .collect();
                let mut set = Outcomes::new();
                set.insert(outs);
                set
            } else {
                Outcomes::new()
            }
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for id in (0..nodes.len()).rev() {
            let mut merged = outcomes[id].clone();
            for &(_, sid) in &nodes[id].succs {
                for o in &outcomes[sid] {
                    if merged.insert(o.clone()) {
                        changed = true;
                    }
                }
            }
            if merged.len() != outcomes[id].len() {
                outcomes[id] = merged;
            }
        }
    }

    // --- Classify. ---
    let mut bivalent = 0;
    let mut univalent = 0;
    let mut terminals = 0;
    let mut critical = Vec::new();
    let mut disagreement = false;
    for (id, node) in nodes.iter().enumerate() {
        if node.terminal {
            terminals += 1;
            if outcomes[id].iter().any(|outs| outs.len() >= 2) {
                disagreement = true;
            }
            continue;
        }
        match outcomes[id].len() {
            0 | 1 => univalent += 1,
            _ => {
                bivalent += 1;
                let succ_outcomes: Vec<Outcomes> = node
                    .succs
                    .iter()
                    .map(|&(_, sid)| outcomes[sid].clone())
                    .collect();
                if !succ_outcomes.is_empty()
                    && succ_outcomes.iter().all(|o| o.len() <= 1)
                {
                    critical.push((node.schedule.clone(), succ_outcomes));
                }
            }
        }
    }
    // Terminal disagreement also shows in outcome sets of terminals.
    for node in &nodes {
        if node.terminal {
            let outs: BTreeSet<Value> =
                node.system.outputs().into_iter().flatten().collect();
            if outs.len() >= 2 {
                disagreement = true;
            }
        }
    }

    Ok(ValenceReport {
        configs: nodes.len(),
        terminals,
        bivalent,
        univalent,
        critical,
        initial_outcomes: outcomes[0].clone(),
        disagreement_reachable: disagreement,
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsim_smr::object::{Object, ObjectId};
    use rsim_smr::process::{Process, ProtocolStep, SnapshotProcess, SnapshotProtocol};

    /// Writes its input then outputs whatever the register holds.
    #[derive(Clone, Debug)]
    struct Naive {
        input: i64,
        wrote: bool,
    }

    impl SnapshotProtocol for Naive {
        fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
            if self.wrote {
                ProtocolStep::Output(view[0].clone())
            } else {
                self.wrote = true;
                ProtocolStep::Update(0, Value::Int(self.input))
            }
        }
        fn components(&self) -> usize {
            1
        }
    }

    fn naive_system(a: i64, b: i64) -> System {
        let mk = |input| {
            Box::new(SnapshotProcess::new(Naive { input, wrote: false }, ObjectId(0)))
                as Box<dyn Process>
        };
        System::new(vec![Object::snapshot(1)], vec![mk(a), mk(b)])
    }

    #[test]
    fn distinct_inputs_make_naive_initially_bivalent_with_disagreement() {
        let report = analyze(&naive_system(1, 2), ValenceLimits::default()).unwrap();
        assert!(!report.truncated);
        assert!(report.initially_bivalent());
        assert!(report.disagreement_reachable);
        assert!(report.terminals > 0);
    }

    #[test]
    fn equal_inputs_are_univalent() {
        let report = analyze(&naive_system(5, 5), ValenceLimits::default()).unwrap();
        assert!(!report.initially_bivalent());
        assert!(!report.disagreement_reachable);
        let only: BTreeSet<Value> = [Value::Int(5)].into_iter().collect();
        assert_eq!(report.initial_outcomes.iter().next().unwrap(), &only);
    }

    #[test]
    fn critical_configurations_exist_for_naive_protocol() {
        // The naive protocol has configurations where the next step
        // seals the decision: e.g. both poised to write, the write
        // order decides. Those show up as critical configurations.
        let report = analyze(&naive_system(1, 2), ValenceLimits::default()).unwrap();
        assert!(
            !report.critical.is_empty(),
            "expected critical configurations in the naive protocol"
        );
    }

    #[test]
    fn bivalent_plus_univalent_counts_are_consistent() {
        let report = analyze(&naive_system(1, 2), ValenceLimits::default()).unwrap();
        assert_eq!(
            report.bivalent + report.univalent + report.terminals,
            report.configs
        );
    }
}
