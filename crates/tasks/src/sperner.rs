//! Sperner's lemma on iterated barycentric subdivisions.
//!
//! The impossibility of wait-free k-set agreement among k+1 processes —
//! the result the revisionist simulation reduces *to* (Corollary 33) —
//! rests on Sperner's lemma \[44\]: every Sperner labeling of a subdivided
//! k-simplex has an odd number of panchromatic cells (in particular, at
//! least one).
//!
//! This module builds iterated barycentric subdivisions of the standard
//! k-simplex as abstract simplicial complexes, tracks each vertex's
//! *carrier* (the minimal face of the original simplex containing it),
//! and verifies the lemma by direct counting. Property tests draw random
//! Sperner labelings; the count is odd for all of them.

use rand::Rng;
use std::collections::{BTreeSet, HashMap};

/// Identifies a vertex of a [`Complex`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VertexId(pub usize);

/// An abstract simplicial complex of pure dimension `dim`, with each
/// vertex carrying the set of original corners spanning its carrier.
#[derive(Clone, Debug)]
pub struct Complex {
    dim: usize,
    /// Each top simplex is a sorted list of `dim + 1` vertex ids.
    simplices: Vec<Vec<VertexId>>,
    /// `carriers[v]` = the original corners of vertex v's carrier face.
    carriers: Vec<BTreeSet<usize>>,
}

impl Complex {
    /// The standard k-simplex: corners 0..=k, carrier of corner i = {i}.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsim_tasks::sperner::Complex;
    ///
    /// let c = Complex::standard(2);
    /// assert_eq!(c.dim(), 2);
    /// assert_eq!(c.simplices().len(), 1);
    /// ```
    pub fn standard(dim: usize) -> Self {
        Complex {
            dim,
            simplices: vec![(0..=dim).map(VertexId).collect()],
            carriers: (0..=dim).map(|i| [i].into_iter().collect()).collect(),
        }
    }

    /// The dimension of the complex.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The top-dimensional simplices.
    pub fn simplices(&self) -> &[Vec<VertexId>] {
        &self.simplices
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.carriers.len()
    }

    /// The carrier (set of original corners) of vertex `v`.
    pub fn carrier(&self, v: VertexId) -> &BTreeSet<usize> {
        &self.carriers[v.0]
    }

    /// One barycentric subdivision: new vertices are the nonempty faces
    /// of old simplices; new top simplices are the maximal flags
    /// F₁ ⊂ F₂ ⊂ … ⊂ F_{dim+1} within an old simplex. The carrier of a
    /// face-vertex is the union of the carriers of its old vertices.
    pub fn barycentric_subdivision(&self) -> Complex {
        let mut face_ids: HashMap<Vec<VertexId>, VertexId> = HashMap::new();
        let mut carriers: Vec<BTreeSet<usize>> = Vec::new();
        let mut intern = |face: &[VertexId],
                          old_carriers: &[BTreeSet<usize>]|
         -> VertexId {
            let key: Vec<VertexId> = face.to_vec();
            if let Some(&id) = face_ids.get(&key) {
                return id;
            }
            let id = VertexId(carriers.len());
            let carrier: BTreeSet<usize> = face
                .iter()
                .flat_map(|v| old_carriers[v.0].iter().copied())
                .collect();
            carriers.push(carrier);
            face_ids.insert(key, id);
            id
        };

        let mut simplices = Vec::new();
        for simplex in &self.simplices {
            // Flags within this simplex correspond to permutations of
            // its vertices: F_i = the first i vertices of the permuted
            // order, kept sorted for canonical interning.
            for perm in permutations(simplex) {
                let mut flag = Vec::with_capacity(self.dim + 1);
                for i in 1..=self.dim + 1 {
                    let mut face: Vec<VertexId> = perm[..i].to_vec();
                    face.sort();
                    flag.push(intern(&face, &self.carriers));
                }
                flag.sort();
                simplices.push(flag);
            }
        }
        Complex { dim: self.dim, simplices, carriers }
    }

    /// `depth` iterated barycentric subdivisions.
    pub fn subdivide(&self, depth: usize) -> Complex {
        let mut c = self.clone();
        for _ in 0..depth {
            c = c.barycentric_subdivision();
        }
        c
    }
}

fn permutations(items: &[VertexId]) -> Vec<Vec<VertexId>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &first) in items.iter().enumerate() {
        let mut rest: Vec<VertexId> = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            let mut perm = vec![first];
            perm.append(&mut tail);
            out.push(perm);
        }
    }
    out
}

/// A coloring of the vertices of a complex with colors `0..=dim`.
#[derive(Clone, Debug)]
pub struct Labeling {
    colors: Vec<usize>,
}

impl Labeling {
    /// Wraps an explicit color vector (indexed by vertex id).
    ///
    /// # Panics
    ///
    /// Panics if `colors.len()` differs from the vertex count.
    pub fn new(complex: &Complex, colors: Vec<usize>) -> Self {
        assert_eq!(colors.len(), complex.vertex_count());
        Labeling { colors }
    }

    /// A uniformly random *Sperner* labeling: each vertex gets a color
    /// drawn from its carrier.
    pub fn random_sperner<R: Rng>(complex: &Complex, rng: &mut R) -> Self {
        let colors = (0..complex.vertex_count())
            .map(|v| {
                let carrier: Vec<usize> =
                    complex.carrier(VertexId(v)).iter().copied().collect();
                carrier[rng.gen_range(0..carrier.len())]
            })
            .collect();
        Labeling { colors }
    }

    /// The color of vertex `v`.
    pub fn color(&self, v: VertexId) -> usize {
        self.colors[v.0]
    }

    /// Is this a Sperner labeling (every vertex colored from its
    /// carrier)?
    pub fn is_sperner(&self, complex: &Complex) -> bool {
        (0..complex.vertex_count())
            .all(|v| complex.carrier(VertexId(v)).contains(&self.colors[v]))
    }
}

/// Counts the panchromatic (fully-colored) top simplices.
pub fn count_panchromatic(complex: &Complex, labeling: &Labeling) -> usize {
    complex
        .simplices()
        .iter()
        .filter(|s| {
            let colors: BTreeSet<usize> =
                s.iter().map(|&v| labeling.color(v)).collect();
            colors.len() == complex.dim() + 1
        })
        .count()
}

/// Sperner's lemma: for a Sperner labeling, the panchromatic count is
/// odd. Returns the count.
///
/// # Errors
///
/// Returns a description if the labeling is not Sperner or the count is
/// even (which would falsify the lemma — it never happens).
pub fn verify_sperner(complex: &Complex, labeling: &Labeling) -> Result<usize, String> {
    if !labeling.is_sperner(complex) {
        return Err("labeling is not a Sperner labeling".into());
    }
    let count = count_panchromatic(complex, labeling);
    if count % 2 == 1 {
        Ok(count)
    } else {
        Err(format!("panchromatic count {count} is even — Sperner's lemma falsified?!"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_simplex_structure() {
        let c = Complex::standard(2);
        assert_eq!(c.vertex_count(), 3);
        assert_eq!(c.carrier(VertexId(0)), &[0].into_iter().collect());
    }

    #[test]
    fn subdivision_counts_1d() {
        // Subdividing an edge once gives 2 edges and 3 vertices.
        let c = Complex::standard(1).barycentric_subdivision();
        assert_eq!(c.simplices().len(), 2);
        assert_eq!(c.vertex_count(), 3);
    }

    #[test]
    fn subdivision_counts_2d() {
        // Barycentric subdivision of a triangle: 6 triangles, 7 vertices.
        let c = Complex::standard(2).barycentric_subdivision();
        assert_eq!(c.simplices().len(), 6);
        assert_eq!(c.vertex_count(), 7);
        // Twice: 36 triangles, 25 vertices.
        let c2 = c.barycentric_subdivision();
        assert_eq!(c2.simplices().len(), 36);
        assert_eq!(c2.vertex_count(), 25);
    }

    #[test]
    fn barycenter_carrier_is_whole_simplex() {
        let c = Complex::standard(2).barycentric_subdivision();
        let full: BTreeSet<usize> = [0, 1, 2].into_iter().collect();
        assert!((0..c.vertex_count()).any(|v| c.carrier(VertexId(v)) == &full));
    }

    #[test]
    fn sperner_on_identity_labeling() {
        // Color each vertex by the minimum of its carrier: a valid
        // Sperner labeling.
        let c = Complex::standard(2).subdivide(2);
        let colors = (0..c.vertex_count())
            .map(|v| *c.carrier(VertexId(v)).iter().next().unwrap())
            .collect();
        let l = Labeling::new(&c, colors);
        let count = verify_sperner(&c, &l).unwrap();
        assert!(count >= 1);
    }

    #[test]
    fn sperner_random_labelings_always_odd() {
        let mut rng = StdRng::seed_from_u64(12345);
        for dim in 1..=3 {
            let depth = if dim == 3 { 1 } else { 2 };
            let c = Complex::standard(dim).subdivide(depth);
            for _ in 0..20 {
                let l = Labeling::random_sperner(&c, &mut rng);
                verify_sperner(&c, &l).unwrap();
            }
        }
    }

    #[test]
    fn non_sperner_labeling_rejected() {
        let c = Complex::standard(2);
        let l = Labeling::new(&c, vec![1, 1, 1]); // corner 0 colored 1
        assert!(verify_sperner(&c, &l).is_err());
    }

    #[test]
    fn panchromatic_count_on_base_simplex() {
        let c = Complex::standard(2);
        let l = Labeling::new(&c, vec![0, 1, 2]);
        assert_eq!(count_panchromatic(&c, &l), 1);
    }
}
