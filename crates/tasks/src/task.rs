//! Colorless tasks (paper §2, "Tasks and Protocols").
//!
//! A colorless task is a triple (I, O, Δ): input sets, output sets, and
//! a carrier map Δ assigning valid output sets to each input set, all
//! closed under subsets. Colorlessness means validation only depends on
//! the *sets* of inputs and outputs, not on which process holds which.

use rsim_smr::value::Value;
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// A violation of a task specification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TaskViolation {
    /// The task that was violated.
    pub task: String,
    /// Human-readable description of the violation.
    pub reason: String,
}

impl fmt::Display for TaskViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} violated: {}", self.task, self.reason)
    }
}

impl Error for TaskViolation {}

/// A colorless task: validation of an output set against an input set.
///
/// Implementations must be insensitive to multiplicity and order
/// (colorlessness); the provided [`ColorlessTask::validate`] helper
/// deduplicates before calling [`ColorlessTask::validate_sets`].
///
/// `Send + Sync` so one task can validate runs on many sweep/campaign
/// worker threads; tasks are plain descriptions, never mutable state.
pub trait ColorlessTask: fmt::Debug + Send + Sync {
    /// The task's name (for reporting).
    fn name(&self) -> String;

    /// Validates a *set* of outputs against a *set* of inputs.
    ///
    /// # Errors
    ///
    /// Returns a [`TaskViolation`] describing the first violated clause.
    fn validate_sets(
        &self,
        inputs: &BTreeSet<Value>,
        outputs: &BTreeSet<Value>,
    ) -> Result<(), TaskViolation>;

    /// Validates slices of per-process inputs and outputs (deduplicated
    /// into sets first — the task is colorless).
    ///
    /// # Errors
    ///
    /// Returns a [`TaskViolation`] describing the first violated clause.
    fn validate(&self, inputs: &[Value], outputs: &[Value]) -> Result<(), TaskViolation> {
        let input_set: BTreeSet<Value> = inputs.iter().cloned().collect();
        let output_set: BTreeSet<Value> = outputs.iter().cloned().collect();
        if output_set.is_empty() {
            return Ok(()); // no process output anything: vacuously fine
        }
        if input_set.is_empty() {
            return Err(self.violation("outputs produced with no inputs".to_string()));
        }
        self.validate_sets(&input_set, &output_set)
    }

    /// Convenience constructor for a violation of this task.
    fn violation(&self, reason: String) -> TaskViolation {
        TaskViolation { task: self.name(), reason }
    }
}

/// Checks the subset-closure property required of colorless tasks on a
/// specific (inputs, outputs) pair: if `outputs` is valid for `inputs`,
/// then every nonempty subset of `outputs` is valid for every superset
/// chosen from `inputs` (we check subsets of outputs against the same
/// inputs, the clause the simulation relies on in Lemma 27).
pub fn check_output_subset_closure(
    task: &dyn ColorlessTask,
    inputs: &BTreeSet<Value>,
    outputs: &BTreeSet<Value>,
) -> Result<(), TaskViolation> {
    if task.validate_sets(inputs, outputs).is_err() {
        return Ok(()); // premise false; nothing to check
    }
    let outs: Vec<&Value> = outputs.iter().collect();
    let n = outs.len();
    for mask in 1..(1u32 << n.min(16)) {
        let subset: BTreeSet<Value> = outs
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, v)| (*v).clone())
            .collect();
        task.validate_sets(inputs, &subset).map_err(|e| TaskViolation {
            task: task.name(),
            reason: format!("subset closure failed for {subset:?}: {e}"),
        })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy task: outputs must all equal Int(0).
    #[derive(Debug)]
    struct Zero;

    impl ColorlessTask for Zero {
        fn name(&self) -> String {
            "zero".into()
        }
        fn validate_sets(
            &self,
            _inputs: &BTreeSet<Value>,
            outputs: &BTreeSet<Value>,
        ) -> Result<(), TaskViolation> {
            if outputs.iter().all(|v| *v == Value::Int(0)) {
                Ok(())
            } else {
                Err(self.violation("nonzero output".to_string()))
            }
        }
    }

    #[test]
    fn empty_outputs_vacuously_valid() {
        assert!(Zero.validate(&[Value::Int(1)], &[]).is_ok());
    }

    #[test]
    fn validates_through_sets() {
        assert!(Zero
            .validate(&[Value::Int(1)], &[Value::Int(0), Value::Int(0)])
            .is_ok());
        assert!(Zero.validate(&[Value::Int(1)], &[Value::Int(1)]).is_err());
    }

    #[test]
    fn outputs_without_inputs_rejected() {
        assert!(Zero.validate(&[], &[Value::Int(0)]).is_err());
    }

    #[test]
    fn subset_closure_holds_for_zero_task() {
        let inputs: BTreeSet<Value> = [Value::Int(1)].into_iter().collect();
        let outputs: BTreeSet<Value> = [Value::Int(0)].into_iter().collect();
        assert!(check_output_subset_closure(&Zero, &inputs, &outputs).is_ok());
    }
}
