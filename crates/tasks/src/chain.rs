//! Terminal-configuration adjacency: the connectivity argument behind
//! the step-complexity lower bound of Hoest–Shavit \[36\] that
//! Corollary 34 consumes.
//!
//! For a 2-process wait-free protocol, consider all reachable terminal
//! configurations. Two of them are *adjacent* if some process is in the
//! same final state in both (it cannot distinguish them). The adjacency
//! graph of a wait-free full-information protocol is **connected** — it
//! is (a quotient of) the subdivided path of combinatorial topology:
//!
//! * for ε-approximate agreement with inputs {0, 1}, outputs along any
//!   path from the "p0-ran-first" corner (outputs near 0) to the
//!   "p1-ran-first" corner (outputs near 1) change by at most the
//!   protocol's per-edge spread. Crossing from 0 to 1 therefore needs
//!   `Ω(1/ε)` terminal configurations — which forces `Ω(log 1/ε)`
//!   rounds, the lower-bound *shape* of \[36\];
//! * for consensus, connectivity plus differing corner decisions forces
//!   an edge whose two configurations decide differently — and since
//!   some process cannot distinguish its endpoints, agreement breaks:
//!   the FLP-style argument in graph form.
//!
//! [`terminal_adjacency`] computes the graph exactly for small systems.

use rsim_smr::error::ModelError;
use rsim_smr::explore::Limits;
use rsim_smr::process::ProcessId;
use rsim_smr::system::System;
use rsim_smr::value::Value;
use std::collections::{HashMap, HashSet};

/// One terminal configuration of the adjacency graph.
#[derive(Clone, Debug)]
pub struct TerminalNode {
    /// Outputs, indexed by process.
    pub outputs: Vec<Value>,
    /// Per-process final state fingerprints.
    pub state_keys: Vec<String>,
}

/// The terminal adjacency graph.
#[derive(Clone, Debug)]
pub struct ChainReport {
    /// The terminal configurations (deduplicated).
    pub nodes: Vec<TerminalNode>,
    /// Edges: pairs of node indices indistinguishable to some process.
    pub edges: Vec<(usize, usize, ProcessId)>,
    /// Number of connected components.
    pub components: usize,
    /// Whether exploration was truncated (the graph is then partial).
    pub truncated: bool,
}

impl ChainReport {
    /// Is the graph connected?
    pub fn is_connected(&self) -> bool {
        self.components <= 1
    }

    /// The largest output difference across any single edge, for
    /// dyadic-valued outputs (`None` if outputs are not dyadic).
    pub fn max_edge_spread(&self) -> Option<rsim_smr::value::Dyadic> {
        let mut max: Option<rsim_smr::value::Dyadic> = None;
        for &(a, b, _) in &self.edges {
            for va in &self.nodes[a].outputs {
                for vb in &self.nodes[b].outputs {
                    let (da, db) = (va.as_dyadic()?, vb.as_dyadic()?);
                    let d = (da - db).abs();
                    if max.is_none() || d > max.unwrap() {
                        max = Some(d);
                    }
                }
            }
        }
        max
    }

    /// Edges whose endpoint configurations decide different value sets
    /// — for consensus protocols these are the fatal edges.
    pub fn disagreement_edges(&self) -> Vec<(usize, usize)> {
        self.edges
            .iter()
            .filter(|&&(a, b, _)| {
                let sa: HashSet<&Value> = self.nodes[a].outputs.iter().collect();
                let sb: HashSet<&Value> = self.nodes[b].outputs.iter().collect();
                sa != sb
            })
            .map(|&(a, b, _)| (a, b))
            .collect()
    }
}

/// Builds the terminal adjacency graph of `initial` by bounded
/// exhaustive exploration.
///
/// # Errors
///
/// Propagates step errors from the runtime.
pub fn terminal_adjacency(
    initial: &System,
    limits: Limits,
) -> Result<ChainReport, ModelError> {
    let n = initial.process_count();
    // Collect terminal configurations, deduplicated by configuration.
    let mut nodes: Vec<TerminalNode> = Vec::new();
    let mut seen: HashSet<u64> = HashSet::new();
    let mut truncated = false;

    // Plain DFS (the explorer's check callback cannot easily carry the
    // system state out, so re-implement the small walk here).
    let mut stack = vec![(initial.clone(), 0usize)];
    let mut visited: HashSet<u64> = HashSet::new();
    while let Some((sys, depth)) = stack.pop() {
        if !visited.insert(sys.config_fingerprint()) {
            continue;
        }
        if visited.len() > limits.max_configs {
            truncated = true;
            break;
        }
        if sys.all_terminated() {
            if seen.insert(sys.config_fingerprint()) {
                let outputs = sys.outputs().into_iter().flatten().collect();
                let state_keys = (0..n)
                    .map(|p| {
                        sys.process(ProcessId(p))
                            .expect("process exists")
                            .state_key()
                    })
                    .collect();
                nodes.push(TerminalNode { outputs, state_keys });
            }
            continue;
        }
        if depth >= limits.max_depth {
            truncated = true;
            continue;
        }
        for p in 0..n {
            let pid = ProcessId(p);
            if sys.is_terminated(pid) {
                continue;
            }
            let mut fork = sys.clone();
            fork.step(pid)?;
            stack.push((fork, depth + 1));
        }
    }

    // Edges: same (process, state) in two terminal configs.
    let mut by_state: HashMap<(usize, &str), Vec<usize>> = HashMap::new();
    for (idx, node) in nodes.iter().enumerate() {
        for (p, key) in node.state_keys.iter().enumerate() {
            by_state.entry((p, key.as_str())).or_default().push(idx);
        }
    }
    let mut edges = Vec::new();
    let mut edge_set: HashSet<(usize, usize, usize)> = HashSet::new();
    for ((p, _), group) in &by_state {
        for i in 0..group.len() {
            for j in i + 1..group.len() {
                let (a, b) = (group[i].min(group[j]), group[i].max(group[j]));
                if edge_set.insert((a, b, *p)) {
                    edges.push((a, b, ProcessId(*p)));
                }
            }
        }
    }

    // Connected components by union-find.
    let mut parent: Vec<usize> = (0..nodes.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for &(a, b, _) in &edges {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra] = rb;
        }
    }
    let components = (0..nodes.len())
        .map(|i| find(&mut parent, i))
        .collect::<HashSet<_>>()
        .len();

    Ok(ChainReport { nodes, edges, components, truncated })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsim_smr::object::{Object, ObjectId};
    use rsim_smr::process::{Process, ProtocolStep, SnapshotProcess, SnapshotProtocol};

    /// Write input, scan, output what the register holds — the naive
    /// "consensus" used throughout the test suites.
    #[derive(Clone, Debug)]
    struct Naive {
        input: i64,
        wrote: bool,
    }

    impl SnapshotProtocol for Naive {
        fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
            if self.wrote {
                ProtocolStep::Output(view[0].clone())
            } else {
                self.wrote = true;
                ProtocolStep::Update(0, Value::Int(self.input))
            }
        }
        fn components(&self) -> usize {
            1
        }
    }

    fn naive_system(a: i64, b: i64) -> System {
        let mk = |input| {
            Box::new(SnapshotProcess::new(Naive { input, wrote: false }, ObjectId(0)))
                as Box<dyn Process>
        };
        System::new(vec![Object::snapshot(1)], vec![mk(a), mk(b)])
    }

    #[test]
    fn naive_graph_is_connected_with_a_disagreement_edge() {
        let report =
            terminal_adjacency(&naive_system(1, 2), Limits::default()).unwrap();
        assert!(!report.truncated);
        assert!(report.nodes.len() >= 3);
        assert!(report.is_connected());
        // Connectivity + differing decisions ⇒ a fatal edge exists: two
        // adjacent terminal configurations with different output sets,
        // indistinguishable to one process — the FLP-style core.
        assert!(!report.disagreement_edges().is_empty());
    }

    #[test]
    fn equal_inputs_collapse_the_graph() {
        let report =
            terminal_adjacency(&naive_system(5, 5), Limits::default()).unwrap();
        // All terminal configurations decide 5; no disagreement edges.
        assert!(report.disagreement_edges().is_empty());
        for node in &report.nodes {
            assert!(node.outputs.iter().all(|v| *v == Value::Int(5)));
        }
    }
}
