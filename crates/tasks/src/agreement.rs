//! The agreement task family: consensus, k-set agreement, and
//! ε-approximate agreement (paper §2, "the following are all examples of
//! colorless tasks").

use crate::task::{ColorlessTask, TaskViolation};
use rsim_smr::value::{Dyadic, Value};
use std::collections::BTreeSet;

/// k-set agreement: at most `k` distinct outputs, each of which is some
/// process's input. Consensus is the case `k = 1`.
///
/// # Examples
///
/// ```
/// use rsim_tasks::agreement::KSetAgreement;
/// use rsim_tasks::task::ColorlessTask;
/// use rsim_smr::value::Value;
///
/// let task = KSetAgreement::new(2);
/// let inputs = [Value::Int(1), Value::Int(2), Value::Int(3)];
/// assert!(task.validate(&inputs, &[Value::Int(1), Value::Int(2)]).is_ok());
/// assert!(task.validate(&inputs, &[Value::Int(1), Value::Int(2), Value::Int(3)]).is_err());
/// assert!(task.validate(&inputs, &[Value::Int(9)]).is_err());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct KSetAgreement {
    k: usize,
}

impl KSetAgreement {
    /// Creates the k-set agreement task.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k-set agreement requires k >= 1");
        KSetAgreement { k }
    }

    /// The agreement parameter k.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl ColorlessTask for KSetAgreement {
    fn name(&self) -> String {
        if self.k == 1 {
            "consensus".into()
        } else {
            format!("{}-set agreement", self.k)
        }
    }

    fn validate_sets(
        &self,
        inputs: &BTreeSet<Value>,
        outputs: &BTreeSet<Value>,
    ) -> Result<(), TaskViolation> {
        if outputs.len() > self.k {
            return Err(self.violation(format!(
                "{} distinct outputs {outputs:?}, but k = {}",
                outputs.len(),
                self.k
            )));
        }
        for out in outputs {
            if !inputs.contains(out) {
                return Err(self.violation(format!(
                    "output {out:?} is not the input of any process (inputs {inputs:?})"
                )));
            }
        }
        Ok(())
    }
}

/// Consensus as a standalone constructor (`KSetAgreement::new(1)`).
pub fn consensus() -> KSetAgreement {
    KSetAgreement::new(1)
}

/// ε-approximate agreement: outputs pairwise within ε, all inside
/// `[min(inputs), max(inputs)]`. Values are exact dyadic rationals.
///
/// # Examples
///
/// ```
/// use rsim_tasks::agreement::ApproximateAgreement;
/// use rsim_tasks::task::ColorlessTask;
/// use rsim_smr::value::{Dyadic, Value};
///
/// let task = ApproximateAgreement::new(Dyadic::new(1, 2)); // ε = 1/4
/// let inputs = [Value::Dyadic(Dyadic::zero()), Value::Dyadic(Dyadic::one())];
/// let close = [Value::Dyadic(Dyadic::new(1, 1)), Value::Dyadic(Dyadic::new(3, 2))];
/// assert!(task.validate(&inputs, &close).is_ok());
/// let far = [Value::Dyadic(Dyadic::zero()), Value::Dyadic(Dyadic::one())];
/// assert!(task.validate(&inputs, &far).is_err());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ApproximateAgreement {
    epsilon: Dyadic,
}

impl ApproximateAgreement {
    /// Creates the ε-approximate agreement task.
    ///
    /// # Panics
    ///
    /// Panics if ε ≤ 0.
    pub fn new(epsilon: Dyadic) -> Self {
        assert!(epsilon > Dyadic::zero(), "ε must be positive");
        ApproximateAgreement { epsilon }
    }

    /// The agreement parameter ε.
    pub fn epsilon(&self) -> Dyadic {
        self.epsilon
    }
}

impl ColorlessTask for ApproximateAgreement {
    fn name(&self) -> String {
        format!("{}-approximate agreement", self.epsilon)
    }

    fn validate_sets(
        &self,
        inputs: &BTreeSet<Value>,
        outputs: &BTreeSet<Value>,
    ) -> Result<(), TaskViolation> {
        let ins: Vec<Dyadic> = inputs
            .iter()
            .map(|v| {
                v.as_dyadic().ok_or_else(|| {
                    self.violation(format!("input {v:?} is not a dyadic rational"))
                })
            })
            .collect::<Result<_, _>>()?;
        let outs: Vec<Dyadic> = outputs
            .iter()
            .map(|v| {
                v.as_dyadic().ok_or_else(|| {
                    self.violation(format!("output {v:?} is not a dyadic rational"))
                })
            })
            .collect::<Result<_, _>>()?;
        let min_in = *ins.iter().min().expect("nonempty inputs");
        let max_in = *ins.iter().max().expect("nonempty inputs");
        for o in &outs {
            if *o < min_in || *o > max_in {
                return Err(self.violation(format!(
                    "output {o:?} outside input range [{min_in:?}, {max_in:?}]"
                )));
            }
        }
        for a in &outs {
            for b in &outs {
                if (*a - *b).abs() > self.epsilon {
                    return Err(self.violation(format!(
                        "outputs {a:?} and {b:?} are more than ε = {:?} apart",
                        self.epsilon
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::check_output_subset_closure;

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn consensus_requires_single_output() {
        let c = consensus();
        assert!(c.validate(&ints(&[1, 2]), &ints(&[1, 1])).is_ok());
        assert!(c.validate(&ints(&[1, 2]), &ints(&[1, 2])).is_err());
    }

    #[test]
    fn consensus_requires_validity() {
        let c = consensus();
        assert!(c.validate(&ints(&[1, 2]), &ints(&[3])).is_err());
    }

    #[test]
    fn kset_counts_distinct_outputs() {
        let t = KSetAgreement::new(2);
        // Three processes outputting two distinct values is fine.
        assert!(t.validate(&ints(&[1, 2, 3]), &ints(&[1, 2, 2])).is_ok());
        assert!(t.validate(&ints(&[1, 2, 3]), &ints(&[1, 2, 3])).is_err());
    }

    #[test]
    fn kset_name_special_cases_consensus() {
        assert_eq!(consensus().name(), "consensus");
        assert_eq!(KSetAgreement::new(3).name(), "3-set agreement");
    }

    #[test]
    fn approx_agreement_range_clause() {
        let t = ApproximateAgreement::new(Dyadic::one());
        let inputs = vec![
            Value::Dyadic(Dyadic::zero()),
            Value::Dyadic(Dyadic::one()),
        ];
        assert!(t
            .validate(&inputs, &[Value::Dyadic(Dyadic::integer(2))])
            .is_err());
        assert!(t
            .validate(&inputs, &[Value::Dyadic(Dyadic::new(1, 1))])
            .is_ok());
    }

    #[test]
    fn approx_agreement_epsilon_clause() {
        let eps = Dyadic::new(1, 3); // 1/8
        let t = ApproximateAgreement::new(eps);
        let inputs = vec![
            Value::Dyadic(Dyadic::zero()),
            Value::Dyadic(Dyadic::one()),
        ];
        let a = Value::Dyadic(Dyadic::new(1, 1)); // 1/2
        let b = Value::Dyadic(Dyadic::new(5, 3)); // 5/8
        assert!(t.validate(&inputs, &[a.clone(), b]).is_ok());
        let c = Value::Dyadic(Dyadic::new(3, 2)); // 3/4 — 1/4 away
        assert!(t.validate(&inputs, &[a, c]).is_err());
    }

    #[test]
    fn approx_agreement_rejects_non_dyadic() {
        let t = ApproximateAgreement::new(Dyadic::one());
        assert!(t
            .validate(&[Value::Int(0)], &[Value::Dyadic(Dyadic::zero())])
            .is_err());
    }

    #[test]
    fn equal_inputs_force_that_output_for_consensus() {
        let c = consensus();
        assert!(c.validate(&ints(&[5, 5]), &ints(&[5])).is_ok());
        assert!(c.validate(&ints(&[5, 5]), &ints(&[4])).is_err());
    }

    #[test]
    fn subset_closure_for_kset() {
        let t = KSetAgreement::new(2);
        let inputs: BTreeSet<Value> = ints(&[1, 2, 3]).into_iter().collect();
        let outputs: BTreeSet<Value> = ints(&[1, 2]).into_iter().collect();
        assert!(check_output_subset_closure(&t, &inputs, &outputs).is_ok());
    }

    #[test]
    fn subset_closure_for_approx() {
        let t = ApproximateAgreement::new(Dyadic::new(1, 1));
        let inputs: BTreeSet<Value> = [
            Value::Dyadic(Dyadic::zero()),
            Value::Dyadic(Dyadic::one()),
        ]
        .into_iter()
        .collect();
        let outputs: BTreeSet<Value> = [
            Value::Dyadic(Dyadic::new(1, 1)),
            Value::Dyadic(Dyadic::new(3, 2)),
        ]
        .into_iter()
        .collect();
        assert!(check_output_subset_closure(&t, &inputs, &outputs).is_ok());
    }
}
