//! Violation search: concrete counterexamples for concrete protocols.
//!
//! The known impossibility results (FLP, wait-free k-set agreement) say
//! that *every* protocol in a class fails somewhere. For any *specific*
//! protocol — e.g. one extracted by the revisionist simulation from an
//! under-provisioned Π — we can search for its failure directly:
//!
//! * [`search_exhaustive`] — bounded model checking over all schedules,
//!   validating the (partial) output set at every configuration.
//! * [`search_random`] — many random schedules, validating terminal
//!   outputs; scales to systems too large to explore.
//! * [`check_wait_freedom`] — looks for a schedule under which some
//!   process takes more than a budget of steps without terminating.

use crate::task::{ColorlessTask, TaskViolation};
use rsim_smr::error::ModelError;
use rsim_smr::explore::{Explorer, Limits};
use rsim_smr::process::ProcessId;
use rsim_smr::sched::{Random, Scheduler};
use rsim_smr::system::System;
use rsim_smr::value::Value;

/// A concrete counterexample found by the search.
#[derive(Clone, Debug)]
pub enum Violation {
    /// A reachable configuration whose outputs violate the task.
    Task {
        /// The violated clause.
        violation: TaskViolation,
        /// The schedule that reaches the violating configuration (empty
        /// for randomized search, which reports the seed instead).
        schedule: Vec<ProcessId>,
        /// Seed of the randomized schedule, if randomized.
        seed: Option<u64>,
    },
    /// A process ran `steps` steps without terminating — evidence
    /// against wait-freedom.
    NonTermination {
        /// The starving process.
        pid: ProcessId,
        /// Steps it took without outputting.
        steps: usize,
        /// Seed of the randomized schedule, if randomized.
        seed: Option<u64>,
    },
}

fn partial_outputs(sys: &System) -> Vec<Value> {
    sys.outputs().into_iter().flatten().collect()
}

/// Exhaustively searches all schedules (within `limits`) for a reachable
/// configuration whose output set violates `task` given `inputs`.
/// Because colorless tasks are subset-closed, validating *partial*
/// output sets is sound: a bad partial set can never become good.
///
/// # Errors
///
/// Propagates runtime errors from stepping the system. The explorer's
/// mandatory pre-flight lint runs first, so an ill-formed protocol is
/// rejected up front with [`ModelError::PreflightRejected`] (carrying
/// its `RS-Wxxx` diagnostics) rather than burning the search budget;
/// build the explorer directly with
/// [`Explorer::with_preflight`]`(false)` to study such a protocol
/// anyway.
pub fn search_exhaustive(
    initial: &System,
    inputs: &[Value],
    task: &dyn ColorlessTask,
    limits: Limits,
) -> Result<Option<Violation>, ModelError> {
    let explorer = Explorer::new(limits);
    let report = explorer.explore(initial, &mut |sys| {
        let outs = partial_outputs(sys);
        task.validate(inputs, &outs).err().map(|v| v.reason)
    })?;
    Ok(report.violation.map(|(schedule, msg)| Violation::Task {
        violation: TaskViolation { task: task.name(), reason: msg },
        schedule,
        seed: None,
    }))
}

/// Runs `schedules` random executions (seeds `seed..seed+schedules`) of
/// fresh copies produced by `factory`, validating outputs at every step.
/// Returns the first violation found.
pub fn search_random(
    factory: &dyn Fn() -> System,
    inputs: &[Value],
    task: &dyn ColorlessTask,
    schedules: u64,
    max_steps: usize,
    seed: u64,
) -> Option<Violation> {
    for s in seed..seed + schedules {
        let mut sys = factory();
        let mut sched = Random::seeded(s);
        for _ in 0..max_steps {
            if sys.all_terminated() {
                break;
            }
            let Some(pid) = sched.next(&sys) else { break };
            if sys.is_terminated(pid) {
                continue;
            }
            if sys.step(pid).is_err() {
                break;
            }
            let outs = partial_outputs(&sys);
            if let Err(violation) = task.validate(inputs, &outs) {
                return Some(Violation::Task {
                    violation,
                    schedule: sys.trace().iter().map(|e| e.pid).collect(),
                    seed: Some(s),
                });
            }
        }
    }
    None
}

/// Searches for a wait-freedom violation: a random schedule under which
/// some process takes more than `per_process_budget` steps without
/// terminating. Starvation-prone protocols (e.g. obstruction-free but
/// not wait-free ones) fail this quickly under a contending scheduler.
pub fn check_wait_freedom(
    factory: &dyn Fn() -> System,
    schedules: u64,
    per_process_budget: usize,
    seed: u64,
) -> Option<Violation> {
    for s in seed..seed + schedules {
        let mut sys = factory();
        let n = sys.process_count();
        let mut counts = vec![0usize; n];
        let mut sched = Random::seeded(s);
        loop {
            if sys.all_terminated() {
                break;
            }
            let Some(pid) = sched.next(&sys) else { break };
            if sys.is_terminated(pid) {
                continue;
            }
            if sys.step(pid).is_err() {
                break;
            }
            counts[pid.0] += 1;
            if counts[pid.0] > per_process_budget {
                return Some(Violation::NonTermination {
                    pid,
                    steps: counts[pid.0],
                    seed: Some(s),
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agreement::consensus;
    use rsim_smr::object::{Object, ObjectId};
    use rsim_smr::process::{Process, ProtocolStep, SnapshotProcess, SnapshotProtocol};

    /// A broken "consensus": write input, scan, output what you see —
    /// disagrees whenever writes interleave.
    #[derive(Clone, Debug)]
    struct Naive {
        input: i64,
        wrote: bool,
    }

    impl SnapshotProtocol for Naive {
        fn on_scan(&mut self, view: &[Value]) -> ProtocolStep {
            if self.wrote {
                ProtocolStep::Output(view[0].clone())
            } else {
                self.wrote = true;
                ProtocolStep::Update(0, Value::Int(self.input))
            }
        }
        fn components(&self) -> usize {
            1
        }
    }

    fn naive_system() -> System {
        let mk = |input| {
            Box::new(SnapshotProcess::new(Naive { input, wrote: false }, ObjectId(0)))
                as Box<dyn Process>
        };
        System::new(vec![Object::snapshot(1)], vec![mk(1), mk(2)])
    }

    #[test]
    fn exhaustive_search_finds_disagreement() {
        let inputs = [Value::Int(1), Value::Int(2)];
        let v = search_exhaustive(
            &naive_system(),
            &inputs,
            &consensus(),
            Limits::default(),
        )
        .unwrap();
        match v {
            Some(Violation::Task { schedule, .. }) => assert!(!schedule.is_empty()),
            other => panic!("expected a task violation, got {other:?}"),
        }
    }

    #[test]
    fn random_search_finds_disagreement() {
        let inputs = [Value::Int(1), Value::Int(2)];
        let v = search_random(&naive_system, &inputs, &consensus(), 50, 100, 0);
        assert!(v.is_some());
    }

    #[test]
    fn no_violation_with_equal_inputs() {
        let mk = |input| {
            Box::new(SnapshotProcess::new(Naive { input, wrote: false }, ObjectId(0)))
                as Box<dyn Process>
        };
        let factory = move || {
            System::new(vec![Object::snapshot(1)], vec![mk(7), mk(7)])
        };
        let inputs = [Value::Int(7), Value::Int(7)];
        assert!(search_random(&factory, &inputs, &consensus(), 50, 100, 0).is_none());
        assert!(search_exhaustive(
            &factory(),
            &inputs,
            &consensus(),
            Limits::default()
        )
        .unwrap()
        .is_none());
    }

    #[test]
    fn wait_freedom_holds_for_bounded_protocol() {
        assert!(check_wait_freedom(&naive_system, 20, 10, 0).is_none());
    }

    #[test]
    fn wait_freedom_violated_by_spinner() {
        #[derive(Clone, Debug)]
        struct Spinner {
            i: i64,
        }
        impl SnapshotProtocol for Spinner {
            fn on_scan(&mut self, _view: &[Value]) -> ProtocolStep {
                self.i += 1;
                ProtocolStep::Update(0, Value::Int(self.i))
            }
            fn components(&self) -> usize {
                1
            }
        }
        let factory = || {
            System::new(
                vec![Object::snapshot(1)],
                vec![Box::new(SnapshotProcess::new(Spinner { i: 0 }, ObjectId(0)))
                    as Box<dyn Process>],
            )
        };
        let v = check_wait_freedom(&factory, 1, 50, 0);
        assert!(matches!(v, Some(Violation::NonTermination { .. })));
    }
}
